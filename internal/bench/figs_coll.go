package bench

import (
	"mpipart/internal/cluster"
	"mpipart/internal/coll"
	"mpipart/internal/core"
	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
	"mpipart/internal/nccl"
	"mpipart/internal/runner"
	"mpipart/internal/sim"
)

// AllreduceConfig selects one point of the Fig. 6 / Fig. 7 sweeps.
type AllreduceConfig struct {
	Topo cluster.Topology
	Grid int
	// UserParts is the partitioned variant's user partition count.
	UserParts int
	// Model overrides the calibrated defaults (nil = DefaultModel); the
	// benchgate perturbation tests use it.
	Model *cluster.Model
}

// model resolves the config's model.
func (c AllreduceConfig) model() cluster.Model {
	if c.Model != nil {
		return *c.Model
	}
	return cluster.DefaultModel()
}

// MPIAllreducePoint declares a MeasureMPIAllreduce run (UserParts is
// excluded from the key: the traditional path has no partitions).
func MPIAllreducePoint(id string, cfg AllreduceConfig) runner.Point {
	key := runner.KeyOf("coll/mpi", cfg.Topo, cfg.model(), cfg.Grid)
	return elapsedPoint(id, key, func() float64 { return float64(MeasureMPIAllreduce(cfg)) })
}

// PartitionedAllreducePoint declares a MeasurePartitionedAllreduce run.
func PartitionedAllreducePoint(id string, cfg AllreduceConfig) runner.Point {
	key := runner.KeyOf("coll/partitioned", cfg.Topo, cfg.model(), cfg.Grid, cfg.UserParts)
	return elapsedPoint(id, key, func() float64 { return float64(MeasurePartitionedAllreduce(cfg)) })
}

// NCCLAllreducePoint declares a MeasureNCCLAllreduce run.
func NCCLAllreducePoint(id string, cfg AllreduceConfig) runner.Point {
	key := runner.KeyOf("coll/nccl", cfg.Topo, cfg.model(), cfg.Grid)
	return elapsedPoint(id, key, func() float64 { return float64(MeasureNCCLAllreduce(cfg)) })
}

// MeasureMPIAllreduce times the traditional model: vector-add kernel →
// cudaStreamSynchronize → MPI_Allreduce (host-staged linear fallback).
// The returned time is rank 0's, with a barrier ensuring it covers the
// slowest rank.
func MeasureMPIAllreduce(cfg AllreduceConfig) sim.Duration {
	var elapsed sim.Duration
	w := mpi.NewWorld(cfg.Topo, cfg.model(), 1)
	defer w.Free()
	n := cfg.Grid * 1024
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		buf := r.Dev.Alloc(n)
		r.Barrier(p)
		t0 := p.Now()
		r.Stream.Launch(vecAddSpec(cfg.Grid))
		r.Stream.Synchronize(p)
		r.Allreduce(p, buf, mpi.OpSum)
		r.Barrier(p)
		if r.ID == 0 {
			elapsed = sim.Duration(p.Now() - t0)
		}
	})
	if err := w.Run(); err != nil {
		panic(err)
	}
	return elapsed
}

// MeasurePartitionedAllreduce times the partitioned collective: the
// steady-state epoch's kernel launch → MPI_Wait span, with user partitions
// marked ready from inside the kernel (block-aggregated device
// MPIX_Pready). Start and Pbuf_prepare run outside the timed region, as in
// the Section VI-B micro-benchmarks.
func MeasurePartitionedAllreduce(cfg AllreduceConfig) sim.Duration {
	var elapsed sim.Duration
	w := mpi.NewWorld(cfg.Topo, cfg.model(), 1)
	defer w.Free()
	n := cfg.Grid * 1024
	up := cfg.UserParts
	if up <= 0 {
		up = 4
	}
	if up > cfg.Grid {
		up = cfg.Grid
	}
	blocksPer := cfg.Grid / up
	const iters = 2
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		buf := r.Dev.Alloc(n)
		req := coll.PallreduceInit(p, r, buf, up, mpi.OpSum)
		var dev *coll.DeviceColl
		for it := 0; it < iters; it++ {
			req.Start(p)
			req.PbufPrepare(p)
			if dev == nil {
				dev = req.DeviceHandle(p, blocksPer)
			}
			r.Barrier(p)
			t0 := p.Now()
			r.Stream.Launch(gpu.KernelSpec{
				Name: "vecadd+pready", Grid: cfg.Grid, Block: 1024,
				Body: func(b *gpu.BlockCtx) {
					u := b.Idx / blocksPer
					if u >= up {
						u = up - 1
					}
					dev.PreadyBlockAggregated(b, u)
				},
			})
			req.Wait(p)
			r.Barrier(p)
			if r.ID == 0 {
				elapsed = sim.Duration(p.Now() - t0)
			}
			r.Stream.WaitIdle(p)
		}
	})
	if err := w.Run(); err != nil {
		panic(err)
	}
	return elapsed
}

// MeasureNCCLAllreduce times the NCCL baseline: kernel → ncclAllReduce on
// the stream → one cudaStreamSynchronize.
func MeasureNCCLAllreduce(cfg AllreduceConfig) sim.Duration {
	var elapsed sim.Duration
	w := mpi.NewWorld(cfg.Topo, cfg.model(), 1)
	defer w.Free()
	comm := nccl.NewComm(w)
	n := cfg.Grid * 1024
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		buf := r.Dev.Alloc(n)
		r.Barrier(p)
		t0 := p.Now()
		r.Stream.Launch(vecAddSpec(cfg.Grid))
		comm.AllReduce(r, r.Stream, buf)
		r.Stream.Synchronize(p)
		r.Barrier(p)
		if r.ID == 0 {
			elapsed = sim.Duration(p.Now() - t0)
		}
	})
	if err := w.Run(); err != nil {
		panic(err)
	}
	return elapsed
}

// allreduceGrids returns the Fig. 6/7 sweep grids: the paper evaluates
// large grids for the ring algorithm.
func allreduceGrids(maxGrid int) []int {
	var gs []int
	for _, g := range gridSweep(maxGrid) {
		if g >= 128 {
			gs = append(gs, g)
		}
	}
	return gs
}

func allreduceJob(name, title string, topo cluster.Topology, maxGrid int) Job {
	grids := allreduceGrids(maxGrid)
	var points []runner.Point
	for _, g := range grids {
		cfg := AllreduceConfig{Topo: topo, Grid: g, UserParts: 4}
		id := name + "/g=" + itoa(g)
		points = append(points,
			MPIAllreducePoint(id+"/mpi", cfg),
			PartitionedAllreducePoint(id+"/partitioned", cfg),
			NCCLAllreducePoint(id+"/nccl", cfg),
		)
	}
	return Job{
		Name:   name,
		Points: points,
		Build: func(ms []runner.Metrics) *Table {
			tb := &Table{
				Title: title,
				Columns: []string{"grid", "MiB", "mpi_allreduce_us", "partitioned_us", "nccl_us",
					"mpi/part", "part-nccl_us"},
			}
			for i, g := range grids {
				tr := ms[3*i]["elapsed_ns"]
				pa := ms[3*i+1]["elapsed_ns"]
				nc := ms[3*i+2]["elapsed_ns"]
				tb.AddRow(g, float64(bytesOf(g))/(1<<20), tr/1000, pa/1000, nc/1000,
					tr/pa, (pa-nc)/1000)
			}
			tb.Note("paper: partitioned is orders of magnitude below MPI_Allreduce; NCCL leads partitioned (~226us at 1K grids) because its per-step reductions are fused (no launch+streamSync inside the collective)")
			return tb
		},
	}
}

// Fig6Job declares Figure 6: allreduce on four GH200 (one node).
func Fig6Job(maxGrid int) Job {
	return allreduceJob("fig6", "Fig. 6: allreduce, four GH200 on one node", cluster.OneNodeGH200(), maxGrid)
}

// Fig6 regenerates Figure 6 through the shared parallel runner.
func Fig6(maxGrid int) *Table { return RunJob(defaultRunner, Fig6Job(maxGrid)) }

// Fig7Job declares Figure 7: allreduce on eight GH200 (two nodes, ranks
// 0-3 and 4-7 per node so ring neighbours are placed optimally).
func Fig7Job(maxGrid int) Job {
	return allreduceJob("fig7", "Fig. 7: allreduce, eight GH200 on two nodes", cluster.TwoNodeGH200(), maxGrid)
}

// Fig7 regenerates Figure 7 through the shared parallel runner.
func Fig7(maxGrid int) *Table { return RunJob(defaultRunner, Fig7Job(maxGrid)) }

// tableIMeasure runs the Table I world once and returns the five measured
// overheads.
func tableIMeasure(model cluster.Model) (initSend, initColl, prequest, prepFirst, prepAvg sim.Duration) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), model, 1)
	defer w.Free()
	const epochs = 100
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		buf := r.Dev.Alloc(4096)
		switch r.ID {
		case 0:
			t0 := p.Now()
			sreq := core.PsendInit(p, r, 1, 70, buf, 4)
			initSend = sim.Duration(p.Now() - t0)

			t0 = p.Now()
			creq := coll.PallreduceInit(p, r, r.Dev.Alloc(1024), 2, mpi.OpSum)
			initColl = sim.Duration(p.Now() - t0)
			_ = creq

			var sum sim.Duration
			for e := 0; e < epochs; e++ {
				sreq.Start(p)
				t0 = p.Now()
				sreq.PbufPrepare(p)
				d := sim.Duration(p.Now() - t0)
				if e == 0 {
					prepFirst = d
				} else {
					sum += d
				}
				if e == 0 {
					t0 = p.Now()
					q, err := core.PrequestCreate(p, sreq, core.PrequestOpts{Mech: core.ProgressionEngine})
					if err != nil {
						panic(err)
					}
					prequest = sim.Duration(p.Now() - t0)
					_ = q
				}
				for i := 0; i < 4; i++ {
					sreq.Pready(p, i)
				}
				sreq.Wait(p)
			}
			prepAvg = sum / sim.Duration(epochs-1)
		case 1:
			rreq := core.PrecvInit(p, r, 0, 70, buf, 4)
			coll.PallreduceInit(p, r, r.Dev.Alloc(1024), 2, mpi.OpSum)
			for e := 0; e < epochs; e++ {
				rreq.Start(p)
				rreq.PbufPrepare(p)
				rreq.Wait(p)
			}
		default:
			// Ranks 2 and 3 participate in the collective init only.
			coll.PallreduceInit(p, r, r.Dev.Alloc(1024), 2, mpi.OpSum)
		}
	})
	if err := w.Run(); err != nil {
		panic(err)
	}
	return
}

// TableIPoint declares the Table I overhead measurement (one world).
func TableIPoint(id string, model cluster.Model) runner.Point {
	return runner.Point{
		ID:  id,
		Key: runner.KeyOf("tableI", cluster.OneNodeGH200(), model),
		Run: func() runner.Metrics {
			initSend, initColl, prequest, prepFirst, prepAvg := tableIMeasure(model)
			return runner.Metrics{
				"init_send_ns":  float64(initSend),
				"init_coll_ns":  float64(initColl),
				"prequest_ns":   float64(prequest),
				"prep_first_ns": float64(prepFirst),
				"prep_avg_ns":   float64(prepAvg),
			}
		},
	}
}

// TableIJob declares Table I: the overheads of the partitioned API calls
// over 100 epochs on the testbed topology.
func TableIJob() Job {
	return Job{
		Name:   "table1",
		Points: []runner.Point{TableIPoint("table1/overheads", cluster.DefaultModel())},
		Build: func(ms []runner.Metrics) *Table {
			tb := &Table{
				Title:   "Table I: overheads of partitioned API calls",
				Columns: []string{"call", "measured_us", "paper_us"},
			}
			m := ms[0]
			tb.AddRow("MPI_PSend/Recv_init", m["init_send_ns"]/1000, "17.2 ± 10.2")
			tb.AddRow("MPIX_Pallreduce_init", m["init_coll_ns"]/1000, "62.3 ± 6.2")
			tb.AddRow("MPIX_Prequest_create", m["prequest_ns"]/1000, "110.7 ± 37.8")
			tb.AddRow("MPIX_Pbuf_prepare (first)", m["prep_first_ns"]/1000, "193.4")
			tb.AddRow("MPIX_Pbuf_prepare (avg subsequent)", m["prep_avg_ns"]/1000, "3.4 ± 1.4")
			tb.Note("deterministic simulation: no run-to-run variance (paper reports std over 10 samples)")
			return tb
		},
	}
}

// TableI regenerates Table I through the shared parallel runner.
func TableI() *Table { return RunJob(defaultRunner, TableIJob()) }
