package core

import (
	"fmt"
	"strings"

	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

// This file is the opt-in runtime sanitizer for the partitioned API: a
// uniform checker behind every state-machine guard of the library. Without a
// sanitizer the guards keep the seed behaviour — they panic with a "core:"
// message. With one attached (EnableSanitizer), every violation is recorded
// as a structured SanViolation, reported through the trace layer, and — in
// SanRecord mode — the offending operation is skipped so the simulation can
// continue and the full misuse report can be collected in one run, the way
// GICC's runtime validation and the misuse classes of Bridges et al. treat
// GPU-triggered MPI bugs.
//
// The sanitizer also adds checks the bare library cannot afford or does not
// reach on the device path:
//
//   - double MPIX_Pready through the device bindings (PreadyThread/Warp/
//     Block and the Kernel Copy path), which the flag write otherwise
//     silently absorbs;
//   - aggregation-counter overflow (more block contributions than the
//     BlocksPerTransport threshold);
//   - leaked requests — never Wait'ed epochs and never-Free'd requests — at
//     Finalize.

// SanMode selects how the sanitizer responds to a violation.
type SanMode int

const (
	// SanPanic records the violation, then panics like the bare library.
	SanPanic SanMode = iota
	// SanRecord records the violation, skips the offending operation, and
	// lets the simulation continue; collect the report with Violations or
	// Finalize.
	SanRecord
)

// SanViolation is one recorded partitioned-API violation.
type SanViolation struct {
	// Rule is the violation class slug (e.g. "double-pready",
	// "use-after-free", "leak-active").
	Rule string
	// Request identifies the request, e.g. "psend 0->1 tag 7 #0".
	Request string
	// Detail is the human-readable description.
	Detail string
	// At is the virtual time of detection.
	At sim.Time
}

func (v SanViolation) String() string {
	return fmt.Sprintf("%v [%s] %s on %s", v.At, v.Rule, v.Detail, v.Request)
}

// sanRecord tracks one request's lifecycle for leak detection.
type sanRecord struct {
	desc      string
	nparts    int
	started   bool
	epochs    int // Start calls
	completed int // Wait/Test completions
	freed     bool
}

// Sanitizer is the per-world runtime checker. All partitioned requests of
// the world report their transitions to it once attached.
type Sanitizer struct {
	w          *mpi.World
	mode       SanMode
	recs       map[interface{}]*sanRecord
	order      []interface{} // registration order, for deterministic reports
	violations []SanViolation
}

// EnableSanitizer attaches a runtime sanitizer to the world (idempotent;
// a second call only updates the mode). It must be called before the
// requests it should track are initialized.
func EnableSanitizer(w *mpi.World, mode SanMode) *Sanitizer {
	if sn, ok := w.SanState.(*Sanitizer); ok {
		sn.mode = mode
		return sn
	}
	sn := &Sanitizer{w: w, mode: mode, recs: map[interface{}]*sanRecord{}}
	w.SanState = sn
	return sn
}

// SanitizerOf returns the world's sanitizer, or nil when none is attached.
func SanitizerOf(w *mpi.World) *Sanitizer {
	sn, _ := w.SanState.(*Sanitizer)
	return sn
}

func sanOf(r *mpi.Rank) *Sanitizer { return SanitizerOf(r.W) }

// Violations returns a copy of the violations recorded so far.
func (sn *Sanitizer) Violations() []SanViolation {
	return append([]SanViolation(nil), sn.violations...)
}

// Finalize runs end-of-simulation leak detection: every tracked request must
// have closed its epochs (Wait) and been released (Free). Call it after
// World.Run returns. Leaks are recorded as violations — never panics — and
// the cumulative report is returned.
func (sn *Sanitizer) Finalize() []SanViolation {
	for _, req := range sn.order {
		rec := sn.recs[req]
		if rec.freed {
			continue
		}
		if rec.started {
			sn.addViolation("leak-active", rec.desc,
				fmt.Sprintf("request leaked in an active epoch at Finalize: Start #%d never Wait'ed", rec.epochs))
		} else {
			sn.addViolation("leak-unfreed", rec.desc,
				fmt.Sprintf("request never freed before Finalize (%d epochs completed)", rec.completed))
		}
	}
	return sn.Violations()
}

// Report renders the violations as a human-readable multi-line string.
func (sn *Sanitizer) Report() string {
	if len(sn.violations) == 0 {
		return "sanitizer: clean"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sanitizer: %d violation(s)\n", len(sn.violations))
	for _, v := range sn.violations {
		b.WriteString("  " + v.String() + "\n")
	}
	return b.String()
}

// addViolation records and publishes one violation through the trace layer
// (the nil-safe Tracer makes this free when tracing is off).
func (sn *Sanitizer) addViolation(rule, req, detail string) {
	v := SanViolation{Rule: rule, Request: req, Detail: detail, At: sn.w.K.Now()}
	sn.violations = append(sn.violations, v)
	sn.w.K.Tracer().Instant("sanitizer", "violation:"+rule, v.At,
		sim.TraceKV{K: "request", V: req},
		sim.TraceKV{K: "detail", V: detail})
}

// register starts tracking a request.
func (sn *Sanitizer) register(req interface{}, desc string, nparts int) {
	if _, ok := sn.recs[req]; ok {
		return
	}
	sn.recs[req] = &sanRecord{desc: desc, nparts: nparts}
	sn.order = append(sn.order, req)
}

func (sn *Sanitizer) onStart(req interface{}) {
	if rec, ok := sn.recs[req]; ok {
		rec.started = true
		rec.epochs++
	}
}

func (sn *Sanitizer) onComplete(req interface{}) {
	if rec, ok := sn.recs[req]; ok {
		rec.started = false
		rec.completed++
	}
}

func (sn *Sanitizer) onFree(req interface{}) {
	if rec, ok := sn.recs[req]; ok {
		rec.started = false
		rec.freed = true
	}
}

// ---- hooks the request implementations call ----

// sanRegister, sanStart, sanComplete and sanFree are no-ops without an
// attached sanitizer.
func sanRegister(r *mpi.Rank, req interface{}, desc string, nparts int) {
	if sn := sanOf(r); sn != nil {
		sn.register(req, desc, nparts)
	}
}

func sanStart(r *mpi.Rank, req interface{}) {
	if sn := sanOf(r); sn != nil {
		sn.onStart(req)
	}
}

func sanComplete(r *mpi.Rank, req interface{}) {
	if sn := sanOf(r); sn != nil {
		sn.onComplete(req)
	}
}

func sanFree(r *mpi.Rank, req interface{}) {
	if sn := sanOf(r); sn != nil {
		sn.onFree(req)
	}
}

// sanViolate is the uniform violation guard. It records the violation when a
// sanitizer is attached. It returns true — meaning "the caller must skip the
// offending operation" — only in SanRecord mode; otherwise it panics with
// the library's conventional "core:" message, which is the seed behaviour
// when no sanitizer is attached.
func sanViolate(r *mpi.Rank, rule, req, detail string) bool {
	if sn := sanOf(r); sn != nil {
		sn.addViolation(rule, req, detail)
		if sn.mode == SanRecord {
			return true
		}
	}
	panic(fmt.Sprintf("core: %s on %s [%s]", detail, req, rule))
}

// sanCheckOnly is sanViolate for checks that did not exist in the seed
// library (device-path duplicate detection, aggregation overflow): without a
// sanitizer it stays silent to preserve behaviour; with one it records, and
// panics in SanPanic mode. Returns true when the caller must skip the
// operation.
func sanCheckOnly(r *mpi.Rank, rule, req, detail string) bool {
	sn := sanOf(r)
	if sn == nil {
		return false
	}
	sn.addViolation(rule, req, detail)
	if sn.mode == SanRecord {
		return true
	}
	panic(fmt.Sprintf("core: %s on %s [%s]", detail, req, rule))
}
