package core

import (
	"fmt"

	"mpipart/internal/mpi"
	"mpipart/internal/sim"
	"mpipart/internal/ucx"
)

// SendRequest is the send side of a persistent partitioned channel
// (MPI_Psend_init). Partition indices here are *transport* partitions; the
// partitioned-collective layer (package coll) maps user partitions onto
// them.
type SendRequest struct {
	R    *mpi.Rank
	Key  chanKey
	Dest int
	Tag  int

	// parts are the send-side partition views of the user buffer.
	parts [][]float64

	// protocol state
	prepared bool
	epoch    int // increments on Start; 0 = never started
	started  bool
	ep       *ucx.Endpoint
	rkey     ucx.Rkey

	// per-epoch progress state
	issued   []bool // partition put issued this epoch
	nIssued  int
	inflight int  // puts (data or completion) not yet fully acknowledged
	active   bool // registered with the progression engine

	// device request attached by MPIX_Prequest_create, if any
	preq *Prequest

	// freed marks a released request.
	freed bool

	// Continuation-scan state (ProgressTask): the partition cursor, the
	// progress accumulator, the engine's continuation, and per-put captures
	// of the endpoint/rkey/epoch (taken before the issue-cost sleeps, as the
	// blocking Pready captures them before its waits). The step funcs and
	// the inflight-decrement completion callback are bound once at init so
	// steady-state progression allocates nothing.
	tPart  int
	tDid   bool
	tDone  func(didWork, stillActive bool)
	tEp    *ucx.Endpoint
	tRk    ucx.Rkey
	tEpoch int

	fnScan     sim.TaskFn
	fnDataDone sim.TaskFn
	fnFlagDone sim.TaskFn
	fnComplete sim.TaskFn
	fnCbDone   func(p *sim.Proc)
}

// PsendInit initializes the send side of a partitioned channel with equal
// contiguous partitions (MPI_Psend_init).
func PsendInit(p *sim.Proc, r *mpi.Rank, dest, tag int, buf []float64, nparts int) *SendRequest {
	return PsendInitParts(p, r, dest, tag, EqualPartitions(buf, nparts))
}

// PsendInitParts initializes the send side with an explicit partition
// layout (each partition is a view of the application's send buffer; the
// collective layer uses non-contiguous layouts).
func PsendInitParts(p *sim.Proc, r *mpi.Rank, dest, tag int, parts [][]float64) *SendRequest {
	st := state(p, r)
	if dest < 0 || dest >= r.W.Size() {
		panic(fmt.Sprintf("core: PsendInit to invalid rank %d", dest))
	}
	if len(parts) == 0 {
		panic("core: PsendInit with zero partitions")
	}
	k3 := [3]int{r.ID, dest, tag}
	key := chanKey{src: r.ID, dst: dest, tag: tag, seq: st.seqs[k3]}
	st.seqs[k3]++

	// Host bookkeeping: pre-populate the ucp_request_param_t equivalents,
	// pack setup_t, and send it non-blockingly (① in Fig. 1).
	p.Wait(r.W.Model.PinitCost)
	req := &SendRequest{
		R:      r,
		Key:    key,
		Dest:   dest,
		Tag:    tag,
		parts:  parts,
		issued: make([]bool, len(parts)),
	}
	req.fnScan = req.stepScan
	req.fnDataDone = req.stepDataIssued
	req.fnFlagDone = req.stepFlagIssued
	req.fnComplete = req.stepCompletionFlag
	req.fnCbDone = func(*sim.Proc) { req.inflight-- }
	r.Worker.AMSend(ucx.WorkerAddr(dest), amSetup, setupMsg{
		Key:      key,
		NParts:   len(parts),
		PartLens: partLens(parts),
		Worker:   r.Worker.Addr,
	}, 160)
	sanRegister(r, req, req.sanDesc(), len(parts))
	return req
}

func (s *SendRequest) sanDesc() string { return "psend " + s.Key.String() }

// violate reports a state-machine violation on this request through the
// uniform checker; true means "skip the offending operation" (SanRecord).
func (s *SendRequest) violate(rule, detail string) bool {
	return sanViolate(s.R, rule, s.sanDesc(), detail)
}

// NParts returns the number of transport partitions.
func (s *SendRequest) NParts() int { return len(s.parts) }

// Part returns the send-side view of partition i.
func (s *SendRequest) Part(i int) []float64 { return s.parts[i] }

// Epoch returns the current communication epoch (0 before the first Start).
func (s *SendRequest) Epoch() int { return s.epoch }

// Start begins a communication epoch (MPI_Start): it marks the request
// pending and resets the per-epoch flags to their defaults. Per the MPI
// standard it is non-blocking and guarantees no progress by itself.
func (s *SendRequest) Start(p *sim.Proc) {
	if s.checkUsable("Start") {
		return
	}
	if s.started {
		if s.violate("double-start", "Start on already-started send request") {
			return
		}
	}
	sanStart(s.R, s)
	p.Wait(s.R.W.Model.HostPostOverhead)
	s.epoch++
	s.started = true
	s.nIssued = 0
	for i := range s.issued {
		s.issued[i] = false
	}
	if s.preq != nil {
		s.preq.resetEpoch()
	}
	if !s.active {
		s.active = true
		s.R.Engine.Register(s)
	}
}

// PbufPrepare guarantees the receiver is ready (MPIX_Pbuf_prepare, ② in
// Fig. 1). The first call blocks until the receiver's setup response —
// including its registered memory keys — arrives, then creates the endpoint
// and unpacks the rkeys. Subsequent calls wait for the receiver's
// ready-to-receive signal for the current epoch.
func (s *SendRequest) PbufPrepare(p *sim.Proc) {
	if s.checkUsable("PbufPrepare") {
		return
	}
	if !s.started {
		if s.violate("pbufprepare-before-start", "PbufPrepare before Start") {
			return
		}
	}
	t0 := p.Now()
	defer func() {
		s.R.W.K.Tracer().Span(fmt.Sprintf("rank%d/host", s.R.ID), "PbufPrepare "+s.Key.String(), t0, p.Now())
	}()
	chargeMCAOnce(p, s.R)
	if !s.prepared {
		am := s.R.Worker.WaitAM(p, amSetupRsp, func(a ucx.AM) bool {
			return a.Payload.(setupRsp).Key == s.Key
		})
		rsp := am.Payload.(setupRsp)
		s.ep = s.R.Worker.EpTo(p, rsp.Worker)
		rk, err := s.ep.RkeyUnpack(p, rsp.Rkey)
		if err != nil {
			panic("core: " + err.Error())
		}
		if rk.Parts() != len(s.parts) {
			panic(fmt.Sprintf("core: partition count mismatch on %s: send %d recv %d",
				s.Key, len(s.parts), rk.Parts()))
		}
		s.rkey = rk
		s.prepared = true
		return
	}
	// Later epochs: wait for the matching ready-to-receive signal.
	s.R.Worker.WaitAM(p, amRTR, func(a ucx.AM) bool {
		m := a.Payload.(rtrMsg)
		return m.Key == s.Key && m.Epoch >= s.epoch
	})
}

// Prepared reports whether the rkey exchange has completed.
func (s *SendRequest) Prepared() bool { return s.prepared }

// Pready is the host binding of MPI_Pready: mark partition part ready and
// transfer it. It issues the ucp_put_nbx of the partition data using the
// parameters pre-populated at init time, with a chained put attached to the
// completion callback that raises the receive-side arrival flag
// (Section IV-A.4). The progression engine also calls this on behalf of
// device-side MPIX_Pready notifications.
func (s *SendRequest) Pready(p *sim.Proc, part int) {
	if s.checkUsable("Pready") {
		return
	}
	if !s.started {
		if s.violate("pready-before-start", "Pready before Start") {
			return
		}
	}
	if !s.prepared {
		if s.violate("pready-before-pbufprepare", "Pready before PbufPrepare") {
			return
		}
	}
	if part < 0 || part >= len(s.parts) {
		if s.violate("pready-range", fmt.Sprintf("Pready partition %d out of %d", part, len(s.parts))) {
			return
		}
	}
	if s.issued[part] {
		if s.violate("double-pready", fmt.Sprintf("duplicate Pready of partition %d", part)) {
			return
		}
	}
	s.markIssued(part)
	s.inflight++
	ep, rk, epoch := s.ep, s.rkey, s.epoch
	// The receive-side completion-signal put is issued immediately behind
	// the data put: the transport's per-route FIFO guarantees the flag can
	// never pass its partition's data (the role the chained completion
	// callback plays on real UCX), and issuing it eagerly preserves the
	// fine-grained arrival semantics MPI_Parrived exists for — the signal
	// trails only its own partition's data, not every later partition's.
	ep.PutPartition(p, rk, part, s.parts[part], nil)
	ep.PutFlag(p, rk, part, int64(epoch), s.fnCbDone)
}

// completionOnly raises the receive-side arrival flag without moving data;
// the Kernel Copy path uses it after device code has already stored the
// partition into the peer's mapped memory (④.b/⑤ in Fig. 1).
func (s *SendRequest) completionOnly(p *sim.Proc, part int) {
	if s.issued[part] {
		if s.violate("double-pready", fmt.Sprintf("duplicate completion of partition %d", part)) {
			return
		}
	}
	s.markIssued(part)
	s.inflight++
	s.ep.PutFlag(p, s.rkey, part, int64(s.epoch), s.fnCbDone)
}

func (s *SendRequest) markIssued(part int) {
	s.issued[part] = true
	s.nIssued++
}

// Issued reports whether partition part has been marked ready this epoch.
func (s *SendRequest) Issued(part int) bool { return s.issued[part] }

// Progress implements mpi.Progressor: it converts device-side MPIX_Pready
// notifications (flags in pinned host memory) into host-side transfers.
func (s *SendRequest) Progress(p *sim.Proc) (didWork, stillActive bool) {
	if !s.started {
		return false, s.active
	}
	if q := s.preq; q != nil {
		for part := 0; part < len(s.parts); part++ {
			if s.issued[part] {
				continue
			}
			switch q.pending.Get(part) {
			case readyData:
				s.Pready(p, part)
				didWork = true
			case readyCompleted:
				s.completionOnly(p, part)
				didWork = true
			}
		}
	}
	return didWork, s.active
}

// ProgressTask implements mpi.TaskProgressor: the continuation form of
// Progress, driven natively on the engine's Task. The partition cursor and
// put sequencing replicate the blocking path operation-for-operation
// (guards, markIssued before the issue-cost waits, data put then chained
// flag put), so virtual time is bit-identical; the host saves the goroutine
// handoffs the engine proc paid per issue-cost wait.
func (s *SendRequest) ProgressTask(t *sim.Task, done func(didWork, stillActive bool)) {
	s.tDone = done
	s.tDid = false
	s.tPart = 0
	s.stepScan(t)
}

// stepScan walks the partition pending flags from the cursor, issuing the
// next ready partition's puts or finishing the scan.
func (s *SendRequest) stepScan(t *sim.Task) {
	if !s.started {
		s.tDone(false, s.active)
		return
	}
	if q := s.preq; q != nil {
		for s.tPart < len(s.parts) {
			part := s.tPart
			if s.issued[part] {
				s.tPart++
				continue
			}
			switch q.pending.Get(part) {
			case readyData:
				s.tDid = true
				s.preadyTask(t, part)
				return
			case readyCompleted:
				s.tDid = true
				s.completionOnlyTask(t, part)
				return
			}
			s.tPart++
		}
	}
	s.tDone(s.tDid, s.active)
}

// nextPart advances the cursor past the current partition and resumes the
// scan in the same dispatch.
func (s *SendRequest) nextPart(t *sim.Task) {
	s.tPart++
	t.Then(s.fnScan)
}

// preadyTask is Pready in continuation form: same sanitizer guards, then
// markIssued and the data-put/flag-put sequence with the issue costs taken
// as Task sleeps instead of proc waits.
func (s *SendRequest) preadyTask(t *sim.Task, part int) {
	if s.checkUsable("Pready") {
		s.nextPart(t)
		return
	}
	if !s.started {
		if s.violate("pready-before-start", "Pready before Start") {
			s.nextPart(t)
			return
		}
	}
	if !s.prepared {
		if s.violate("pready-before-pbufprepare", "Pready before PbufPrepare") {
			s.nextPart(t)
			return
		}
	}
	if part < 0 || part >= len(s.parts) {
		if s.violate("pready-range", fmt.Sprintf("Pready partition %d out of %d", part, len(s.parts))) {
			s.nextPart(t)
			return
		}
	}
	if s.issued[part] {
		if s.violate("double-pready", fmt.Sprintf("duplicate Pready of partition %d", part)) {
			s.nextPart(t)
			return
		}
	}
	s.markIssued(part)
	s.inflight++
	s.tEp, s.tRk, s.tEpoch = s.ep, s.rkey, s.epoch
	s.tEp.PutPartitionValidate(s.tRk, part, s.parts[part])
	t.Then(s.fnDataDone)
	t.Sleep(s.R.W.Model.PutDataIssueCost)
}

// stepDataIssued commits the data put after its issue cost and charges the
// chained flag put's issue cost.
func (s *SendRequest) stepDataIssued(t *sim.Task) {
	part := s.tPart
	s.tEp.PutPartitionCommit(s.tRk, part, s.parts[part], nil)
	s.tEp.PutFlagValidate(s.tRk)
	t.Then(s.fnFlagDone)
	t.Sleep(s.R.W.Model.PutIssueCost)
}

// stepFlagIssued commits the chained arrival-flag put and resumes the scan.
func (s *SendRequest) stepFlagIssued(t *sim.Task) {
	s.tEp.PutFlagCommit(s.tRk, s.tPart, int64(s.tEpoch), s.fnCbDone)
	s.nextPart(t)
}

// completionOnlyTask is completionOnly in continuation form (flag only, no
// data movement — the Kernel Copy path).
func (s *SendRequest) completionOnlyTask(t *sim.Task, part int) {
	if s.issued[part] {
		if s.violate("double-pready", fmt.Sprintf("duplicate completion of partition %d", part)) {
			s.nextPart(t)
			return
		}
	}
	s.markIssued(part)
	s.inflight++
	s.tEp, s.tRk, s.tEpoch = s.ep, s.rkey, s.epoch
	s.tEp.PutFlagValidate(s.tRk)
	t.Then(s.fnComplete)
	t.Sleep(s.R.W.Model.PutIssueCost)
}

// stepCompletionFlag commits the completion-only flag put and resumes the
// scan.
func (s *SendRequest) stepCompletionFlag(t *sim.Task) {
	s.tEp.PutFlagCommit(s.tRk, s.tPart, int64(s.tEpoch), s.fnCbDone)
	s.nextPart(t)
}

// done reports whether the epoch's transfers are fully flushed.
func (s *SendRequest) done() bool {
	return s.nIssued == len(s.parts) && s.inflight == 0 && !s.R.Worker.HasPending()
}

// Wait completes the epoch (MPI_Wait on the send side): it progresses
// outstanding puts until every partition has been transferred and every
// chained completion signal delivered, then deactivates the request until
// the next Start.
func (s *SendRequest) Wait(p *sim.Proc) {
	if s.checkUsable("Wait") {
		return
	}
	if !s.started {
		if s.violate("wait-before-start", "Wait before Start") {
			return
		}
	}
	for !s.done() {
		s.Progress(p)
		s.R.Worker.Progress(p) //nolint:staticcheck // intentional double progress
		if s.done() {
			break
		}
		p.Wait(s.R.W.Model.ProgressPollInterval)
	}
	s.started = false
	s.active = false
	sanComplete(s.R, s)
}

// Test is the non-blocking completion check (MPI_Test).
func (s *SendRequest) Test(p *sim.Proc) bool {
	if s.checkUsable("Test") {
		return false
	}
	s.R.Worker.Progress(p)
	if s.started && s.done() {
		s.started = false
		s.active = false
		sanComplete(s.R, s)
		return true
	}
	return !s.started
}

// Free releases the request (MPI_Request_free). The channel must not be in
// an active epoch.
func (s *SendRequest) Free() {
	if s.started {
		if s.violate("free-active", "Free of send request inside an active epoch") {
			return
		}
	}
	s.freed = true
	s.active = false
	sanFree(s.R, s)
}

// checkUsable guards against use-after-Free; true means "skip the operation"
// (sanitizer in SanRecord mode).
func (s *SendRequest) checkUsable(op string) bool {
	if s.freed {
		return s.violate("use-after-free", op+" on freed send request")
	}
	return false
}
