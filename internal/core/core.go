// Package core is the paper's primary contribution: a UCX-based MPI
// Partitioned point-to-point library with MPI-native GPU-initiated
// communication (Section IV-A).
//
// The host control flow follows Figure 1 of the paper exactly:
//
//	sreq := core.PsendInit(r, dst, tag, buf, nparts)   // ① setup_t sent
//	rreq := core.PrecvInit(r, src, tag, buf, nparts)   // ① recv posted
//	sreq.Start(p)                                       // mark pending
//	sreq.PbufPrepare(p)                                 // ② receiver maps
//	                                                    //   buffer+flags,
//	                                                    //   responds rkeys
//	preq := core.PrequestCreate(p, sreq, opts)          // ③ device request
//	stream.Launch(kernel using preq.Pready*)            // ④ device Pready
//	sreq.Wait(p)                                        // ⑤ completion
//
// Device bindings (MPIX_Pready at thread / warp / block granularity, with
// optional multi-block aggregation counters, and the intra-node Kernel Copy
// path) are methods on Prequest called from simulated kernel bodies.
//
// Two copy mechanisms exist, as in Section IV-A.4:
//
//   - ProgressionEngine: a CUDA thread raises a flag in pinned host memory;
//     the MPI progression engine detects it and issues the host MPI_Pready
//     (a ucp_put_nbx of the partition with a chained put that raises the
//     receive-side arrival flag).
//   - KernelCopy: device code stores the partition directly into the peer's
//     mapped memory over NVLink (via the ucp_rkey_ptr mapping) and raises
//     the host flag with the "data already moved" value; the progression
//     engine then sends only the completion signal.
package core

import (
	"fmt"

	"mpipart/internal/mpi"
	"mpipart/internal/sim"
	"mpipart/internal/ucx"
)

// Active-message ids used by the partitioned protocol.
const (
	amSetup    = 101 // sender → receiver: setup_t
	amSetupRsp = 102 // receiver → sender: setup_t response with rkeys
	amRTR      = 103 // receiver → sender: ready-to-receive (later epochs)
)

// chanKey matches a partitioned channel: communicator (implicit), source,
// destination, tag, and posting order (seq) for identical tuples.
type chanKey struct {
	src, dst, tag, seq int
}

func (k chanKey) String() string {
	return fmt.Sprintf("%d->%d tag %d #%d", k.src, k.dst, k.tag, k.seq)
}

// setupMsg is the paper's setup_t: everything the receiver needs to match
// and configure the channel.
type setupMsg struct {
	Key      chanKey
	NParts   int
	PartLens []int
	Worker   ucx.WorkerAddr
}

// setupRsp carries the receiver's registered memory keys back to the sender.
type setupRsp struct {
	Key    chanKey
	Rkey   ucx.Rkey
	Worker ucx.WorkerAddr
}

// rtrMsg signals the receiver is ready for epoch Epoch.
type rtrMsg struct {
	Key   chanKey
	Epoch int
}

// procState is the lazy per-rank state of the partitioned library.
type procState struct {
	seqs map[[3]int]int // (src,dst,tag) -> next channel seq (send side)
	rseq map[[3]int]int // (src,dst,tag) -> next channel seq (recv side)
}

// state returns (creating if needed) the partitioned library's per-rank
// state, charging the lazy UCP context/worker creation on first use
// (Section IV-A.1: "On the first call into the MPI Partitioned API, these
// initialization routines create a UCP context").
func state(p *sim.Proc, r *mpi.Rank) *procState {
	if st, ok := r.PartState.(*procState); ok {
		return st
	}
	p.Wait(r.W.Model.UCPContextCreate)
	r.UCPInitialized = true
	st := &procState{seqs: make(map[[3]int]int), rseq: make(map[[3]int]int)}
	r.PartState = st
	return st
}

// chargeMCAOnce charges the one-time MCA module initialization folded into
// the first MPIX_Pbuf_prepare of a process (Table I: first call 193.4 µs).
func chargeMCAOnce(p *sim.Proc, r *mpi.Rank) {
	if r.MCAInitialized {
		return
	}
	r.MCAInitialized = true
	p.Wait(r.W.Model.MCAInitCost)
}

// EqualPartitions splits buf into n contiguous, nearly equal partitions —
// the standard MPI Partitioned buffer layout.
func EqualPartitions(buf []float64, n int) [][]float64 {
	if n <= 0 {
		panic("core: partition count must be positive")
	}
	parts := make([][]float64, n)
	base, rem := len(buf)/n, len(buf)%n
	off := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		parts[i] = buf[off : off+sz : off+sz]
		off += sz
	}
	return parts
}

func partLens(parts [][]float64) []int {
	ls := make([]int, len(parts))
	for i, pt := range parts {
		ls[i] = len(pt)
	}
	return ls
}

func sameLens(a []int, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != len(b[i]) {
			return false
		}
	}
	return true
}
