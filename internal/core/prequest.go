package core

import (
	"fmt"

	"mpipart/internal/gpu"
	"mpipart/internal/sim"
)

// Mechanism selects the device-side copy mechanism of Section IV-A.4.
type Mechanism int

const (
	// ProgressionEngine: device code raises a pinned-host-memory flag; the
	// MPI progression engine issues the host MPI_Pready (data put plus
	// chained completion signal). Works intra- and inter-node.
	ProgressionEngine Mechanism = iota
	// KernelCopy: device code stores the partition directly into the
	// peer's memory over NVLink (through the ucp_rkey_ptr mapping) and
	// the host only sends the completion signal. Intra-node only.
	KernelCopy
)

func (m Mechanism) String() string {
	if m == KernelCopy {
		return "kernel-copy"
	}
	return "progression-engine"
}

// Pending-flag values written by the device into pinned host memory.
const (
	readyData      int64 = 1 // partition ready: host must transfer data
	readyCompleted int64 = 2 // data already moved (Kernel Copy): signal only
)

// PrequestOpts configures MPIX_Prequest_create.
type PrequestOpts struct {
	// Mech selects the copy mechanism.
	Mech Mechanism
	// BlocksPerTransport is the multi-block aggregation threshold: how
	// many device-side contributions (block Pready calls or kernel-copy
	// deliveries) make up one transport partition. Zero means 1.
	BlocksPerTransport int
}

// Prequest is the MPIX_Prequest device-side request object: the minimal
// information a GPU needs to participate in a partitioned send, resident in
// GPU global memory (Section IV-A.3). It contains the copy mechanism, the
// aggregation threshold, the per-partition aggregation counters, and (for
// the Kernel Copy path) the directly mapped peer memory obtained through
// ucp_rkey_ptr.
type Prequest struct {
	Req  *SendRequest
	Mech Mechanism

	// threshold is the number of contributions aggregated into one
	// transport partition.
	threshold int
	// counters live in GPU global memory, one per transport partition,
	// atomically incremented until the threshold is reached.
	counters []int64
	// pending are the MPIX_Pready notification flags in pinned host
	// memory, watched by the progression engine.
	pending *gpu.Flags
	// devIssued tracks which partitions the device has already notified
	// this epoch; the sanitizer uses it to catch duplicate device-side
	// Pready calls that the idempotent flag write would otherwise absorb.
	devIssued []bool

	// Kernel Copy state: direct views of the peer's partitions (CUDA IPC
	// mapping) and the NVLink route they are reached over.
	remoteParts [][]float64
	route       *sim.Pipe

	freed bool
}

// PrequestCreate converts a prepared send request into a device request
// (MPIX_Prequest_create). It is a *blocking* call: the returned object must
// be valid before the first device MPIX_Pready, so the host pays for pinned
// flag allocation, device allocation of the counters, registration of the
// flags, and the host→device copy of the request structure — the dominant
// parts of the 110.7 µs the paper measures (Table I).
func PrequestCreate(p *sim.Proc, req *SendRequest, opts PrequestOpts) (*Prequest, error) {
	if !req.prepared {
		return nil, fmt.Errorf("core: PrequestCreate before PbufPrepare on %s", req.Key)
	}
	if req.preq != nil {
		return nil, fmt.Errorf("core: duplicate PrequestCreate on %s", req.Key)
	}
	th := opts.BlocksPerTransport
	if th <= 0 {
		th = 1
	}
	m := req.R.W.Model
	q := &Prequest{
		Req:       req,
		Mech:      opts.Mech,
		threshold: th,
		counters:  make([]int64, req.NParts()),
		// Pending flags share the owning worker's condition so device-side
		// MPIX_Pready stores wake the progression engine the instant they
		// become host-visible.
		pending:   gpu.NewFlagsShared("pready:"+req.Key.String(), req.NParts(), req.R.Worker.Cond()),
		devIssued: make([]bool, req.NParts()),
	}
	if opts.Mech == KernelCopy {
		parts, _, err := req.ep.RkeyPtr(req.rkey)
		if err != nil {
			return nil, fmt.Errorf("core: KernelCopy unavailable on %s: %w", req.Key, err)
		}
		q.remoteParts = parts
		q.route = req.ep.Route()
	}
	// Charge the blocking setup: pinned host flags, device structures,
	// registration of the flag region, and the small H2D memcpy of the
	// populated request object.
	p.Wait(m.HostAllocPinnedCost)
	p.Wait(m.DeviceAllocCost)
	p.Wait(m.MemMapCost(int64(8 * req.NParts())))
	req.R.Dev.MemcpyH2D(p, int64(64+16*req.NParts()))
	req.preq = q
	return q, nil
}

// Free releases the device request (MPIX_Prequest_free): the GPU
// global-memory structures and the pinned host flags.
func (q *Prequest) Free() {
	q.freed = true
	if q.Req != nil && q.Req.preq == q {
		q.Req.preq = nil
	}
}

// resetEpoch clears the device-visible per-epoch state (called from
// MPI_Start on the owning request).
func (q *Prequest) resetEpoch() {
	for i := range q.counters {
		q.counters[i] = 0
	}
	for i := range q.devIssued {
		q.devIssued[i] = false
	}
	q.pending.Reset()
}

// NParts returns the transport partition count.
func (q *Prequest) NParts() int { return q.Req.NParts() }

// Pending exposes the pinned-host-memory notification flags (tests and the
// progression engine use it).
func (q *Prequest) Pending() *gpu.Flags { return q.pending }

// checkKernelUse guards the device bindings against use-after-Free; true
// means "skip the operation" (sanitizer in SanRecord mode).
func (q *Prequest) checkKernelUse(op string) bool {
	if q.freed {
		return sanViolate(q.Req.R, "use-after-free", q.Req.sanDesc(),
			"device "+op+" on freed Prequest")
	}
	return false
}

// notify is the single funnel for device-side partition notifications: it
// range-checks the partition, lets the sanitizer catch duplicate device
// Pready calls (the flag write itself is idempotent, so the bare library
// silently absorbs them), and then raises the pinned-host-memory flag.
func (q *Prequest) notify(b *gpu.BlockCtx, part int, v int64) {
	if part < 0 || part >= q.pending.Len() {
		if sanViolate(q.Req.R, "pready-range", q.Req.sanDesc(),
			fmt.Sprintf("device Pready partition %d out of %d", part, q.pending.Len())) {
			return
		}
	}
	if q.devIssued[part] {
		if sanCheckOnly(q.Req.R, "device-double-pready", q.Req.sanDesc(),
			fmt.Sprintf("duplicate device Pready of partition %d", part)) {
			return
		}
	}
	q.devIssued[part] = true
	b.WriteHostFlag(q.pending, part, v)
}

// readyValue is what the device writes into the pending flag: data still to
// be moved for the progression engine, already-moved for kernel copy.
func (q *Prequest) readyValue() int64 {
	if q.Mech == KernelCopy {
		return readyCompleted
	}
	return readyData
}

// ---- Device bindings (called from kernel bodies) ----

// PreadyThread is the thread-level MPIX_Pready binding
// (MPIX_Pready_thread): every thread writes its own partition's
// notification flag into pinned host memory — no aggregation, the baseline
// of Fig. 3 and the behaviour of MPI-ACX.
func (q *Prequest) PreadyThread(b *gpu.BlockCtx, partForThread func(gtid int) int) {
	if q.checkKernelUse("PreadyThread") {
		return
	}
	v := q.readyValue()
	b.ForEachThread(func(gtid int) {
		q.notify(b, partForThread(gtid), v)
	})
}

// PreadyWarp is the warp-level binding (MPIX_Pready_warp): threads of each
// warp synchronize with __syncwarp and lane 0 writes one notification per
// warp.
func (q *Prequest) PreadyWarp(b *gpu.BlockCtx, partForWarp func(warp int) int) {
	if q.checkKernelUse("PreadyWarp") {
		return
	}
	v := q.readyValue()
	for w := 0; w < b.Warps(); w++ {
		b.SyncWarp()
		q.notify(b, partForWarp(w), v)
	}
}

// PreadyBlock is the block-level binding (MPIX_Pready_block): the block
// synchronizes with __syncthreads and thread 0 writes a single
// notification.
func (q *Prequest) PreadyBlock(b *gpu.BlockCtx, part int) {
	if q.checkKernelUse("PreadyBlock") {
		return
	}
	b.SyncThreads()
	q.notify(b, part, q.readyValue())
}

// PreadyBlockAggregated aggregates multiple blocks into one transport
// partition: each block atomically increments the partition's counter in
// GPU global memory; the block that reaches the threshold writes the single
// host notification (the counters created by MPIX_Prequest_create).
func (q *Prequest) PreadyBlockAggregated(b *gpu.BlockCtx, part int) {
	if q.checkKernelUse("PreadyBlockAggregated") {
		return
	}
	b.SyncThreads()
	switch n := b.AtomicAdd(&q.counters[part], 1); {
	case n == int64(q.threshold):
		q.notify(b, part, q.readyValue())
	case n > int64(q.threshold):
		sanCheckOnly(q.Req.R, "aggregate-overflow", q.Req.sanDesc(),
			fmt.Sprintf("partition %d received %d block contributions, threshold %d", part, n, q.threshold))
	}
}

// KernelCopyRange is the Kernel Copy data path: the calling block stores
// elements [lo,hi) of partition part directly into the peer's mapped
// buffer over NVLink, then increments the partition's aggregation counter
// in GPU global memory; the block that reaches the threshold raises the
// host notification ("data already moved"), and the progression engine
// sends only the completion signal to the receiver (④.a/④.b in Fig. 1).
//
// The completion signal travels the same NVLink route as the stores, whose
// FIFO ordering guarantees it can never pass the data — the simulated
// counterpart of the fence + same-QP ordering the real implementation
// relies on.
func (q *Prequest) KernelCopyRange(b *gpu.BlockCtx, part, lo, hi int) {
	if q.checkKernelUse("KernelCopyRange") {
		return
	}
	if q.Mech != KernelCopy {
		if sanViolate(q.Req.R, "mech-mismatch", q.Req.sanDesc(),
			"KernelCopyRange on a progression-engine Prequest") {
			return
		}
	}
	src := q.Req.parts[part][lo:hi]
	dst := q.remoteParts[part][lo:hi]
	b.RemoteCopy(q.route, dst, src, nil)
	switch n := b.AtomicAdd(&q.counters[part], 1); {
	case n == int64(q.threshold):
		q.notify(b, part, readyCompleted)
	case n > int64(q.threshold):
		sanCheckOnly(q.Req.R, "aggregate-overflow", q.Req.sanDesc(),
			fmt.Sprintf("partition %d received %d kernel-copy contributions, threshold %d", part, n, q.threshold))
	}
}

// KernelCopyWholePartition copies all of partition part from a single
// block (threshold-1 channels).
func (q *Prequest) KernelCopyWholePartition(b *gpu.BlockCtx, part int) {
	q.KernelCopyRange(b, part, 0, len(q.Req.parts[part]))
}
