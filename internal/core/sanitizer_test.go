package core

import (
	"strings"
	"testing"

	"mpipart/internal/cluster"
	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
)

func rulesOf(vs []SanViolation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Rule]++
	}
	return m
}

// TestSanitizerDeviceDoublePreadyRecord runs a kernel whose two blocks both
// notify the same transport partition through MPIX_Pready_block. The bare
// library absorbs the duplicate silently (the flag write is idempotent); in
// SanRecord mode the sanitizer must record it, skip it, and let the epoch
// complete normally.
func TestSanitizerDeviceDoublePreadyRecord(t *testing.T) {
	const blockSize = 64
	const grid = 2
	src := make([]float64, blockSize)
	dst := make([]float64, blockSize)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	sn := EnableSanitizer(w, SanRecord)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 3, src, 1)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{Mech: ProgressionEngine})
			if err != nil {
				t.Error(err)
				return
			}
			done := r.Stream.Launch(gpu.KernelSpec{
				Name: "double-pready", Grid: grid, Block: blockSize,
				// Both blocks ready partition 0: the second is a duplicate.
				Body: func(bc *gpu.BlockCtx) { preq.PreadyBlock(bc, 0) },
			})
			sreq.Wait(p)
			done.Wait(p)
			preq.Free()
			sreq.Free()
		case 1:
			rreq := PrecvInit(p, r, 0, 3, dst, 1)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
			rreq.Free()
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	got := rulesOf(sn.Violations())
	if got["device-double-pready"] != 1 {
		t.Errorf("device-double-pready count = %d, want 1 (violations: %v)",
			got["device-double-pready"], sn.Violations())
	}
	// The simulation completed despite the misuse: no leaks at Finalize.
	if leaks := rulesOf(sn.Finalize()); leaks["leak-active"]+leaks["leak-unfreed"] != 0 {
		t.Errorf("unexpected leaks: %v", sn.Violations())
	}
	if !strings.Contains(sn.Report(), "device-double-pready") {
		t.Errorf("Report() missing the violation:\n%s", sn.Report())
	}
}

// TestSanitizerDeviceDoublePreadyPanics pins SanPanic mode on the device
// path: the duplicate notification both records a violation and panics like
// the library's host-side guards.
func TestSanitizerDeviceDoublePreadyPanics(t *testing.T) {
	const blockSize = 32
	src := make([]float64, blockSize)
	dst := make([]float64, blockSize)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	sn := EnableSanitizer(w, SanPanic)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 3, src, 1)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{Mech: ProgressionEngine})
			if err != nil {
				t.Error(err)
				return
			}
			done := r.Stream.Launch(gpu.KernelSpec{
				Name: "double-pready-panic", Grid: 1, Block: blockSize,
				Body: func(bc *gpu.BlockCtx) {
					preq.PreadyBlock(bc, 0)
					func() {
						defer func() {
							if recover() == nil {
								t.Error("duplicate device Pready should panic in SanPanic mode")
							}
						}()
						preq.PreadyBlock(bc, 0)
					}()
				},
			})
			sreq.Wait(p)
			done.Wait(p)
			preq.Free()
			sreq.Free()
		case 1:
			rreq := PrecvInit(p, r, 0, 3, dst, 1)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
			rreq.Free()
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rulesOf(sn.Violations()); got["device-double-pready"] != 1 {
		t.Errorf("device-double-pready count = %d, want 1", got["device-double-pready"])
	}
}

// TestSanitizerParrivedAfterFree exercises the receive-side checks in
// SanRecord mode: Parrived on a freed request and Parrived on an
// out-of-range partition are recorded and answered with false instead of
// panicking.
func TestSanitizerParrivedAfterFree(t *testing.T) {
	const n = 8
	src := make([]float64, n)
	dst := make([]float64, n)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	sn := EnableSanitizer(w, SanRecord)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 5, src, 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			sreq.Pready(p, 0)
			sreq.Pready(p, 1)
			sreq.Wait(p)
			sreq.Free()
		case 1:
			rreq := PrecvInit(p, r, 0, 5, dst, 2)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			if rreq.Parrived(99) {
				t.Error("out-of-range Parrived must answer false")
			}
			rreq.Wait(p)
			rreq.Free()
			if rreq.Parrived(0) {
				t.Error("Parrived on a freed request must answer false")
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	got := rulesOf(sn.Violations())
	if got["parrived-range"] != 1 {
		t.Errorf("parrived-range count = %d, want 1", got["parrived-range"])
	}
	if got["use-after-free"] != 1 {
		t.Errorf("use-after-free count = %d, want 1", got["use-after-free"])
	}
}

// TestSanitizerHostDoublePreadyRecord pins the SanRecord behaviour of a
// pre-existing host-side guard: the duplicate MPI_Pready is recorded and
// skipped (no panic), and the epoch still completes.
func TestSanitizerHostDoublePreadyRecord(t *testing.T) {
	const n = 8
	src := make([]float64, n)
	dst := make([]float64, n)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	sn := EnableSanitizer(w, SanRecord)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 6, src, 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			sreq.Pready(p, 0)
			sreq.Pready(p, 0) // duplicate: recorded, skipped
			sreq.Pready(p, 1)
			sreq.Wait(p)
			sreq.Free()
		case 1:
			rreq := PrecvInit(p, r, 0, 6, dst, 2)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
			rreq.Free()
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rulesOf(sn.Violations()); got["double-pready"] != 1 {
		t.Errorf("double-pready count = %d, want 1 (violations: %v)", got["double-pready"], sn.Violations())
	}
}

// TestSanitizerLeakDetection pins Finalize: a request whose epoch was never
// closed reports leak-active; a completed-but-never-freed request reports
// leak-unfreed; a properly freed request reports nothing.
func TestSanitizerLeakDetection(t *testing.T) {
	const n = 8
	src := make([]float64, n)
	dst := make([]float64, n)
	leaked := make([]float64, n)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	sn := EnableSanitizer(w, SanRecord)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 7, src, 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			sreq.Pready(p, 0)
			sreq.Pready(p, 1)
			sreq.Wait(p)
			// never freed: leak-unfreed

			// started, never waited, never freed: leak-active
			abandoned := PrecvInit(p, r, 1, 99, leaked, 2)
			abandoned.Start(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 7, dst, 2)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
			rreq.Free() // clean lifecycle: no leak
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if vs := sn.Violations(); len(vs) != 0 {
		t.Fatalf("violations before Finalize: %v", vs)
	}
	got := rulesOf(sn.Finalize())
	if got["leak-unfreed"] != 1 {
		t.Errorf("leak-unfreed count = %d, want 1", got["leak-unfreed"])
	}
	if got["leak-active"] != 1 {
		t.Errorf("leak-active count = %d, want 1", got["leak-active"])
	}
	if len(got) != 2 {
		t.Errorf("unexpected extra violations: %v", sn.Finalize())
	}
}

// TestSanitizerIdempotentEnable pins EnableSanitizer semantics: a second
// call returns the same checker and only updates the mode.
func TestSanitizerIdempotentEnable(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	sn := EnableSanitizer(w, SanPanic)
	if SanitizerOf(w) != sn {
		t.Fatal("SanitizerOf must return the attached checker")
	}
	if again := EnableSanitizer(w, SanRecord); again != sn {
		t.Fatal("EnableSanitizer must be idempotent")
	}
	if sn.mode != SanRecord {
		t.Fatalf("mode = %v, want SanRecord", sn.mode)
	}
	if sn.Report() != "sanitizer: clean" {
		t.Fatalf("empty report = %q", sn.Report())
	}
}
