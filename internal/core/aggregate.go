package core

import (
	"mpipart/internal/cluster"
	"mpipart/internal/sim"
)

// This file implements the model-driven transport-partition selection the
// paper points to as follow-on work (its reference [10] dynamically
// optimizes partition aggregation from a performance model): given the
// kernel geometry and the link, choose how many transport partitions to
// aggregate the blocks into.
//
// The trade-off the model captures:
//
//   - More transport partitions start transferring earlier (the first
//     partition becomes ready after grid/parts waves instead of after the
//     whole kernel) — overlap.
//   - Every transport partition costs a host put (detection + issue) and a
//     chained completion signal — per-partition overhead.

// AggregationChoice is one evaluated candidate.
type AggregationChoice struct {
	Parts int
	// Estimate is the modeled kernel-launch→Wait-complete time.
	Estimate sim.Duration
}

// EstimateEpochTime models a progression-engine epoch for a vector-add
// style kernel of the given geometry whose data is split into `parts`
// transport partitions over a link with the given latency and bandwidth.
func EstimateEpochTime(m *cluster.Model, grid, block int, bytes int64, linkLatency sim.Duration, linkBytesPerSec float64, parts int) sim.Duration { //nolint:revive // linkLatency kept for API stability
	if parts < 1 {
		parts = 1
	}
	if parts > grid {
		parts = grid
	}
	bpw := m.BlocksPerWave(block)
	perPart := bytes / int64(parts)
	wire := sim.Duration(float64(perPart) / linkBytesPerSec * 1e9)
	// Fixed per-partition detection path (flag store + visibility + poll).
	detect := m.HostFlagWriteGap + m.HostFlagWriteLatency + m.ProgressPollInterval
	// Per-partition host issue work: the progression engine serializes the
	// data puts and their chained completion signals.
	issueWork := m.PutDataIssueCost + m.ProgressItemCost + m.PutIssueCost

	// Partition i is ready when the wave containing its last block
	// completes; its put is issued after the engine finishes earlier
	// partitions; its transfer occupies the (FIFO) link after the previous
	// partition's. The sender's epoch ends at the last completion signal's
	// local completion — when the link has serialized everything (puts
	// complete locally; propagation latency is the receiver's problem).
	var engineFree, linkFree, done sim.Duration
	for i := 0; i < parts; i++ {
		lastBlock := (i+1)*grid/parts - 1
		waveEnd := sim.Duration((lastBlock/bpw)+1) * m.VecAddWaveTime
		ready := waveEnd + detect
		issue := ready
		if engineFree > issue {
			issue = engineFree
		}
		engineFree = issue + issueWork
		start := engineFree
		if linkFree > start {
			start = linkFree
		}
		linkFree = start + wire
		done = linkFree
	}
	_ = linkLatency
	return m.KernelLaunchCost + done
}

// ChooseTransportPartitions evaluates power-of-two candidates and returns
// the count with the lowest modeled epoch time, with the candidates for
// inspection.
func ChooseTransportPartitions(m *cluster.Model, grid, block int, bytes int64, linkLatency sim.Duration, linkBytesPerSec float64) (best int, choices []AggregationChoice) {
	best = 1
	var bestT sim.Duration = 1 << 62
	for parts := 1; parts <= grid && parts <= 64; parts *= 2 {
		est := EstimateEpochTime(m, grid, block, bytes, linkLatency, linkBytesPerSec, parts)
		choices = append(choices, AggregationChoice{Parts: parts, Estimate: est})
		if est < bestT {
			best, bestT = parts, est
		}
	}
	return best, choices
}

// AutoPrequestOpts returns PrequestOpts with a model-chosen aggregation for
// a progression-engine channel of the given geometry: the GPU always
// signals per block (the simple programming model the paper advocates) and
// MPI aggregates into the chosen number of transport partitions.
func AutoPrequestOpts(m *cluster.Model, grid, block int, bytes int64, intraNode bool) (PrequestOpts, int) {
	lat, bw := m.IBLatency, m.IBBytesPerSec
	if intraNode {
		lat, bw = m.NVLinkLatency, m.NVLinkBytesPerSec
	}
	parts, _ := ChooseTransportPartitions(m, grid, block, bytes, lat, bw)
	blocksPer := grid / parts
	if blocksPer < 1 {
		blocksPer = 1
	}
	return PrequestOpts{Mech: ProgressionEngine, BlocksPerTransport: blocksPer}, parts
}
