package core

import (
	"testing"
	"testing/quick"

	"mpipart/internal/cluster"
	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

// runPair spawns an SPMD world and runs sender/receiver bodies on the given
// ranks, failing the test on simulation errors.
func runPair(t *testing.T, topo cluster.Topology, senderID, recvID int,
	sender func(r *mpi.Rank, p *sim.Proc), receiver func(r *mpi.Rank, p *sim.Proc)) *mpi.World {
	t.Helper()
	w := mpi.NewWorld(topo, cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case senderID:
			sender(r, p)
		case recvID:
			receiver(r, p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEqualPartitions(t *testing.T) {
	buf := make([]float64, 10)
	parts := EqualPartitions(buf, 3)
	if len(parts) != 3 || len(parts[0]) != 4 || len(parts[1]) != 3 || len(parts[2]) != 3 {
		t.Fatalf("parts = %d/%d/%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	// Views must alias the buffer.
	parts[1][0] = 7
	if buf[4] != 7 {
		t.Fatal("partition view does not alias buffer")
	}
}

func TestEqualPartitionsZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EqualPartitions(make([]float64, 4), 0)
}

// TestHostPreadyFullFlow exercises the complete Figure 1 control flow with
// host-side Pready calls: init, start, prepare, per-partition transfer,
// arrival flags, wait.
func TestHostPreadyFullFlow(t *testing.T) {
	const n, nparts = 64, 4
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = float64(i + 1)
	}
	runPair(t, cluster.OneNodeGH200(), 0, 1,
		func(r *mpi.Rank, p *sim.Proc) {
			sreq := PsendInit(p, r, 1, 5, src, nparts)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			for i := 0; i < nparts; i++ {
				sreq.Pready(p, i)
			}
			sreq.Wait(p)
		},
		func(r *mpi.Rank, p *sim.Proc) {
			rreq := PrecvInit(p, r, 0, 5, dst, nparts)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
			if rreq.ArrivedCount() != nparts {
				t.Errorf("arrived = %d", rreq.ArrivedCount())
			}
		})
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
}

// TestPersistentReuseThreeEpochs runs three epochs over the same persistent
// channel, checking that each epoch's data lands and flags reset correctly.
func TestPersistentReuseThreeEpochs(t *testing.T) {
	const n, nparts, epochs = 16, 2, 3
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	src := make([]float64, n)
	dst := make([]float64, n)
	var epochResults [][]float64
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 9, src, nparts)
			for e := 0; e < epochs; e++ {
				for i := range src {
					src[i] = float64(e*100 + i)
				}
				sreq.Start(p)
				sreq.PbufPrepare(p)
				for i := 0; i < nparts; i++ {
					sreq.Pready(p, i)
				}
				sreq.Wait(p)
				r.Barrier(p)
			}
			sreq.Free()
		case 1:
			rreq := PrecvInit(p, r, 0, 9, dst, nparts)
			for e := 0; e < epochs; e++ {
				rreq.Start(p)
				rreq.PbufPrepare(p)
				rreq.Wait(p)
				epochResults = append(epochResults, append([]float64(nil), dst...))
				r.Barrier(p)
			}
			rreq.Free()
		default:
			for e := 0; e < epochs; e++ {
				r.Barrier(p)
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(epochResults) != epochs {
		t.Fatalf("epochs = %d", len(epochResults))
	}
	for e, res := range epochResults {
		for i, v := range res {
			if v != float64(e*100+i) {
				t.Fatalf("epoch %d elem %d = %v", e, i, v)
			}
		}
	}
}

// TestSubsequentPbufPrepareCheap verifies Table I's two-regime behaviour:
// the first PbufPrepare pays MCA init + registration + rkey exchange, later
// ones only the RTR round.
func TestSubsequentPbufPrepareCheap(t *testing.T) {
	var first, second sim.Duration
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	src := make([]float64, 8)
	dst := make([]float64, 8)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 1, src, 2)
			for e := 0; e < 2; e++ {
				sreq.Start(p)
				t0 := p.Now()
				sreq.PbufPrepare(p)
				if e == 0 {
					first = sim.Duration(p.Now() - t0)
				} else {
					second = sim.Duration(p.Now() - t0)
				}
				sreq.Pready(p, 0)
				sreq.Pready(p, 1)
				sreq.Wait(p)
			}
		case 1:
			rreq := PrecvInit(p, r, 0, 1, dst, 2)
			for e := 0; e < 2; e++ {
				rreq.Start(p)
				rreq.PbufPrepare(p)
				rreq.Wait(p)
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if first < 10*second {
		t.Fatalf("first PbufPrepare (%v) should dwarf subsequent (%v)", first, second)
	}
	if second > sim.Microseconds(10) {
		t.Fatalf("subsequent PbufPrepare too expensive: %v", second)
	}
}

// TestDevicePreadyBlockPE runs the full GPU-initiated flow with the
// progression-engine mechanism and block-level Pready: a kernel computes a
// vector sum and marks each block's partition ready from inside the kernel.
func TestDevicePreadyBlockPE(t *testing.T) {
	const blockSize = 256
	const grid = 4
	const n = grid * blockSize
	a := make([]float64, n)
	b := make([]float64, n)
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range a {
		a[i], b[i] = float64(i), float64(2*i)
	}
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 3, src, grid) // one partition per block
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{Mech: ProgressionEngine})
			if err != nil {
				t.Error(err)
				return
			}
			done := r.Stream.Launch(gpu.KernelSpec{
				Name: "vecadd+pready", Grid: grid, Block: blockSize,
				Body: func(bc *gpu.BlockCtx) {
					bc.ForEachThread(func(i int) { src[i] = a[i] + b[i] })
					preq.PreadyBlock(bc, bc.Idx)
				},
			})
			sreq.Wait(p)
			done.Wait(p)
			preq.Free()
		case 1:
			rreq := PrecvInit(p, r, 0, 3, dst, grid)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != float64(3*i) {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], float64(3*i))
		}
	}
}

// TestKernelCopyIntraNode runs the Kernel Copy mechanism: device code
// stores the data directly into the peer's buffer; the host only signals
// completion.
func TestKernelCopyIntraNode(t *testing.T) {
	const grid, blockSize = 2, 128
	const n = grid * blockSize
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = float64(i) * 1.5
	}
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 4, src, grid)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{Mech: KernelCopy})
			if err != nil {
				t.Error(err)
				return
			}
			r.Stream.Launch(gpu.KernelSpec{
				Name: "kernel-copy", Grid: grid, Block: blockSize,
				Body: func(bc *gpu.BlockCtx) {
					preq.KernelCopyWholePartition(bc, bc.Idx)
				},
			})
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 4, dst, grid)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != float64(i)*1.5 {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
}

// TestKernelCopyInterNodeFails: the Kernel Copy mechanism requires the
// CUDA-IPC mapping, which does not exist across nodes.
func TestKernelCopyInterNodeFails(t *testing.T) {
	w := mpi.NewWorld(cluster.TwoNodeGH200(), cluster.DefaultModel(), 1)
	src := make([]float64, 8)
	dst := make([]float64, 8)
	var gotErr error
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 4, 1, src, 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			_, gotErr = PrequestCreate(p, sreq, PrequestOpts{Mech: KernelCopy})
			// Finish the epoch so the receiver completes.
			sreq.Pready(p, 0)
			sreq.Pready(p, 1)
			sreq.Wait(p)
		case 4:
			rreq := PrecvInit(p, r, 0, 1, dst, 2)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("inter-node KernelCopy PrequestCreate should fail")
	}
}

// TestInterNodeProgressionEngine: the PE mechanism must work across nodes
// over InfiniBand.
func TestInterNodeProgressionEngine(t *testing.T) {
	const grid, blockSize = 2, 64
	const n = grid * blockSize
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = float64(i + 7)
	}
	w := mpi.NewWorld(cluster.TwoNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 4, 8, src, grid)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{Mech: ProgressionEngine})
			if err != nil {
				t.Error(err)
				return
			}
			r.Stream.Launch(gpu.KernelSpec{
				Name: "k", Grid: grid, Block: blockSize,
				Body: func(bc *gpu.BlockCtx) { preq.PreadyBlock(bc, bc.Idx) },
			})
			sreq.Wait(p)
		case 4:
			rreq := PrecvInit(p, r, 0, 8, dst, grid)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != float64(i+7) {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
}

// TestBlockAggregation: multiple blocks aggregate into a single transport
// partition through the device counters.
func TestBlockAggregation(t *testing.T) {
	const grid, blockSize = 8, 64
	const n = grid * blockSize
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			// One transport partition fed by all 8 blocks.
			sreq := PsendInit(p, r, 1, 2, src, 1)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{
				Mech: ProgressionEngine, BlocksPerTransport: grid,
			})
			if err != nil {
				t.Error(err)
				return
			}
			r.Stream.Launch(gpu.KernelSpec{
				Name: "agg", Grid: grid, Block: blockSize,
				Body: func(bc *gpu.BlockCtx) {
					preq.PreadyBlockAggregated(bc, 0)
				},
			})
			sreq.Wait(p)
			// Exactly one notification must have been written.
			if preq.Pending().CountNonZero() != 1 {
				t.Errorf("pending flags = %d", preq.Pending().CountNonZero())
			}
		case 1:
			rreq := PrecvInit(p, r, 0, 2, dst, 1)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != float64(i) {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
}

// TestAggregationKernelCopy: kernel-copy deliveries aggregate on the
// delivery-ordered counter; the completion signal must never pass the data.
func TestAggregationKernelCopy(t *testing.T) {
	const grid, blockSize = 4, 64
	const n = grid * blockSize
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = float64(i) + 0.5
	}
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 6, src, 1)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{
				Mech: KernelCopy, BlocksPerTransport: grid,
			})
			if err != nil {
				t.Error(err)
				return
			}
			r.Stream.Launch(gpu.KernelSpec{
				Name: "kc-agg", Grid: grid, Block: blockSize,
				Body: func(bc *gpu.BlockCtx) {
					lo := bc.Idx * blockSize
					preq.KernelCopyRange(bc, 0, lo, lo+blockSize)
				},
			})
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 6, dst, 1)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
			// At arrival, ALL data must already be present.
			for i := range dst {
				if dst[i] != float64(i)+0.5 {
					t.Errorf("completion signal passed data: dst[%d]=%v", i, dst[i])
					break
				}
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestParrivedHostBinding: partial arrival is observable per partition.
func TestParrivedHostBinding(t *testing.T) {
	src := make([]float64, 8)
	dst := make([]float64, 8)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 2, src, 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			sreq.Pready(p, 1) // only the second partition
			// Let it land, then send the other after a gap.
			p.Wait(sim.Microseconds(200))
			sreq.Pready(p, 0)
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 2, dst, 2)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			// Wait for partition 1 to arrive.
			for !rreq.Parrived(1) {
				p.Wait(sim.Microseconds(5))
			}
			if rreq.Parrived(0) {
				t.Error("partition 0 should not have arrived yet")
			}
			if rreq.ArrivedCount() != 1 {
				t.Errorf("arrived = %d, want 1", rreq.ArrivedCount())
			}
			rreq.Wait(p)
			if !rreq.Parrived(0) || !rreq.Parrived(1) {
				t.Error("both partitions should have arrived after Wait")
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDeviceParrivedMirror: arrivals propagate to the GPU-global mirror
// during MPI_Wait.
func TestDeviceParrivedMirror(t *testing.T) {
	src := make([]float64, 8)
	dst := make([]float64, 8)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	var mirror *gpu.Flags
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 2, src, 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			sreq.Pready(p, 0)
			sreq.Pready(p, 1)
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 2, dst, 2)
			mirror = rreq.EnableDeviceParrived(p)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
			p.Wait(sim.Microseconds(5)) // allow H2D flag pushes to land
			if mirror.Get(0) != 1 || mirror.Get(1) != 1 {
				t.Errorf("device mirror = %v/%v", mirror.Get(0), mirror.Get(1))
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTwoChannelsSameTag: posting order (seq) disambiguates identical
// (src,dst,tag) tuples per the MPI matching rules.
func TestTwoChannelsSameTag(t *testing.T) {
	srcA, srcB := []float64{1, 2}, []float64{3, 4}
	dstA, dstB := make([]float64, 2), make([]float64, 2)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			s1 := PsendInit(p, r, 1, 7, srcA, 1)
			s2 := PsendInit(p, r, 1, 7, srcB, 1)
			for _, s := range []*SendRequest{s1, s2} {
				s.Start(p)
			}
			s1.PbufPrepare(p)
			s2.PbufPrepare(p)
			s1.Pready(p, 0)
			s2.Pready(p, 0)
			s1.Wait(p)
			s2.Wait(p)
		case 1:
			r1 := PrecvInit(p, r, 0, 7, dstA, 1)
			r2 := PrecvInit(p, r, 0, 7, dstB, 1)
			r1.Start(p)
			r2.Start(p)
			r1.PbufPrepare(p)
			r2.PbufPrepare(p)
			r1.Wait(p)
			r2.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if dstA[0] != 1 || dstB[0] != 3 {
		t.Fatalf("channel crosstalk: dstA=%v dstB=%v", dstA, dstB)
	}
}

func TestAPIOrderingViolationsPanic(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		if r.ID != 0 {
			return
		}
		sreq := PsendInit(p, r, 1, 1, make([]float64, 4), 2)
		mustPanic := func(name string, fn func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}
		mustPanic("Pready before Start", func() { sreq.Pready(p, 0) })
		mustPanic("Wait before Start", func() { sreq.Wait(p) })
		mustPanic("PbufPrepare before Start", func() { sreq.PbufPrepare(p) })
		sreq.Start(p)
		mustPanic("double Start", func() { sreq.Start(p) })
		mustPanic("Pready before PbufPrepare", func() { sreq.Pready(p, 0) })
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePreadyPanics(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	src, dst := make([]float64, 4), make([]float64, 4)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 1, src, 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			sreq.Pready(p, 0)
			func() {
				defer func() {
					if recover() == nil {
						t.Error("duplicate Pready should panic")
					}
				}()
				sreq.Pready(p, 0)
			}()
			sreq.Pready(p, 1)
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 1, dst, 2)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreedRequestUsePanics(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		if r.ID != 0 {
			return
		}
		sreq := PsendInit(p, r, 1, 1, make([]float64, 2), 1)
		sreq.Free()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		sreq.Start(p)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCountMismatchIsError(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 1, make([]float64, 8), 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 1, make([]float64, 8), 4)
			rreq.Start(p)
			rreq.PbufPrepare(p)
		}
	})
	if err := w.Run(); err == nil {
		t.Fatal("mismatched partition counts should fail the simulation")
	}
}

func TestPrequestCreateRequiresPrepare(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		if r.ID != 0 {
			return
		}
		sreq := PsendInit(p, r, 1, 1, make([]float64, 2), 1)
		if _, err := PrequestCreate(p, sreq, PrequestOpts{}); err == nil {
			t.Error("PrequestCreate before PbufPrepare should fail")
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSendTest exercises MPI_Test-style non-blocking completion.
func TestSendTestNonBlocking(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	src, dst := make([]float64, 4), make([]float64, 4)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 1, src, 1)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			if sreq.Test(p) {
				t.Error("Test true before Pready")
			}
			sreq.Pready(p, 0)
			for !sreq.Test(p) {
				p.Wait(sim.Microseconds(1))
			}
		case 1:
			rreq := PrecvInit(p, r, 0, 1, dst, 1)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			if rreq.Test() && rreq.ArrivedCount() == 0 {
				t.Error("recv Test true before arrival")
			}
			rreq.Wait(p)
			if !rreq.Test() {
				t.Error("recv Test false after Wait")
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for random partition counts, buffer sizes, and epoch counts the
// partitioned channel delivers exactly the sender's data.
func TestPartitionedDeliveryProperty(t *testing.T) {
	f := func(np, sz, ep uint8) bool {
		nparts := int(np)%7 + 1
		n := nparts * (int(sz)%9 + 1)
		epochs := int(ep)%3 + 1
		w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
		src := make([]float64, n)
		dst := make([]float64, n)
		ok := true
		w.Spawn(func(r *mpi.Rank) {
			p := r.Proc()
			switch r.ID {
			case 0:
				sreq := PsendInit(p, r, 1, 1, src, nparts)
				for e := 0; e < epochs; e++ {
					for i := range src {
						src[i] = float64(e*1000 + i)
					}
					sreq.Start(p)
					sreq.PbufPrepare(p)
					for i := 0; i < nparts; i++ {
						sreq.Pready(p, i)
					}
					sreq.Wait(p)
					r.Barrier(p)
				}
			case 1:
				rreq := PrecvInit(p, r, 0, 1, dst, nparts)
				for e := 0; e < epochs; e++ {
					rreq.Start(p)
					rreq.PbufPrepare(p)
					rreq.Wait(p)
					for i := range dst {
						if dst[i] != float64(e*1000+i) {
							ok = false
						}
					}
					r.Barrier(p)
				}
			default:
				for e := 0; e < epochs; e++ {
					r.Barrier(p)
				}
			}
		})
		if err := w.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDeviceParrivedPolledFromKernel: a receiver kernel polls the
// GPU-global mirror of the arrival flags (device MPIX_Parrived binding).
func TestDeviceParrivedPolledFromKernel(t *testing.T) {
	src, dst := make([]float64, 8), make([]float64, 8)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	var observed int64
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 2, src, 2)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			sreq.Pready(p, 0)
			sreq.Pready(p, 1)
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 2, dst, 2)
			mirror := rreq.EnableDeviceParrived(p)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p) // pushes arrivals to the device mirror
			p.Wait(sim.Microseconds(5))
			done := r.Stream.Launch(gpu.KernelSpec{
				Name: "poll-parrived", Grid: 1, Block: 32,
				Body: func(b *gpu.BlockCtx) {
					observed = b.PollDeviceFlag(mirror, 0) + b.PollDeviceFlag(mirror, 1)
				},
			})
			done.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != 2 { // both flags carry epoch 1
		t.Fatalf("device observed %d, want 2", observed)
	}
}

// TestPreadyWarpEndToEnd drives the warp-level binding through a real
// transfer: 4 warps, one partition each.
func TestPreadyWarpEndToEnd(t *testing.T) {
	const warps = 4
	const threads = warps * 32
	src, dst := make([]float64, threads), make([]float64, threads)
	for i := range src {
		src[i] = float64(i) * 0.5
	}
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 7, src, warps)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{Mech: ProgressionEngine})
			if err != nil {
				t.Error(err)
				return
			}
			r.Stream.Launch(gpu.KernelSpec{
				Name: "warp-pready", Grid: 1, Block: threads,
				Body: func(b *gpu.BlockCtx) {
					preq.PreadyWarp(b, func(wp int) int { return wp })
				},
			})
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 7, dst, warps)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != float64(i)*0.5 {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
}

// TestPreadyThreadEndToEnd drives the unaggregated thread-level binding
// (the MPI-ACX baseline): one partition per thread.
func TestPreadyThreadEndToEnd(t *testing.T) {
	const threads = 64
	src, dst := make([]float64, threads), make([]float64, threads)
	for i := range src {
		src[i] = float64(i * i)
	}
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 8, src, threads)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := PrequestCreate(p, sreq, PrequestOpts{Mech: ProgressionEngine})
			if err != nil {
				t.Error(err)
				return
			}
			r.Stream.Launch(gpu.KernelSpec{
				Name: "thread-pready", Grid: 1, Block: threads,
				Body: func(b *gpu.BlockCtx) {
					preq.PreadyThread(b, func(gtid int) int { return gtid })
				},
			})
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 8, dst, threads)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != float64(i*i) {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
}

// TestPrequestFreeReleasesAttachment: after Free, a new Prequest can be
// created on the same channel.
func TestPrequestFreeReleasesAttachment(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	src, dst := make([]float64, 4), make([]float64, 4)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInit(p, r, 1, 9, src, 1)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			q1, err := PrequestCreate(p, sreq, PrequestOpts{Mech: ProgressionEngine})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := PrequestCreate(p, sreq, PrequestOpts{}); err == nil {
				t.Error("duplicate PrequestCreate should fail")
			}
			q1.Free()
			q2, err := PrequestCreate(p, sreq, PrequestOpts{Mech: ProgressionEngine})
			if err != nil {
				t.Errorf("PrequestCreate after Free failed: %v", err)
				return
			}
			r.Stream.Launch(gpu.KernelSpec{
				Name: "k", Grid: 1, Block: 32,
				Body: func(b *gpu.BlockCtx) { q2.PreadyBlock(b, 0) },
			})
			sreq.Wait(p)
		case 1:
			rreq := PrecvInit(p, r, 0, 9, dst, 1)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
