package core

import (
	"fmt"

	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

// Persistent-P2P-backed MPI Partitioned: the alternative implementation
// strategy the paper's related work evaluates (Dosanjh et al. implement
// partitioned over MPI persistent send/receive and find an RMA
// implementation performs better; MPI Advance ships a persistent-based
// partitioned library). Each transport partition is one persistent
// send/receive pair; MPI_Pready starts the partition's persistent send.
//
// The backend exists to reproduce that comparison (see
// BenchmarkAblationPersistentVsRMA): two-sided matching and per-partition
// rendezvous make it slower than the UCX/RMA design of SendRequest for the
// same epoch, on the simulator as on the real systems.

// persistentTagBase separates persistent-partitioned traffic; each channel
// consumes a contiguous block of maxPersistentParts tags.
const (
	persistentTagBase  = 1 << 22
	maxPersistentParts = 1 << 10
)

// PersistentSendRequest is the send side of a persistent-backed partitioned
// channel.
type PersistentSendRequest struct {
	R    *mpi.Rank
	Dest int
	Tag  int

	parts   [][]float64
	ops     []*mpi.PersistentOp
	started bool
	epoch   int
	freed   bool
}

// PersistentRecvRequest is the receive side.
type PersistentRecvRequest struct {
	R   *mpi.Rank
	Src int
	Tag int

	parts   [][]float64
	ops     []*mpi.PersistentOp
	started bool
	epoch   int
	freed   bool
}

func persistentTag(tag, part int) int {
	if part >= maxPersistentParts {
		panic(fmt.Sprintf("core: persistent backend supports at most %d partitions", maxPersistentParts))
	}
	return persistentTagBase + tag*maxPersistentParts + part
}

// PsendInitPersistent initializes the persistent-backed send side with
// equal contiguous partitions.
func PsendInitPersistent(p *sim.Proc, r *mpi.Rank, dest, tag int, buf []float64, nparts int) *PersistentSendRequest {
	parts := EqualPartitions(buf, nparts)
	p.Wait(r.W.Model.PinitCost)
	req := &PersistentSendRequest{R: r, Dest: dest, Tag: tag, parts: parts}
	for i, view := range parts {
		req.ops = append(req.ops, r.SendInit(dest, persistentTag(tag, i), view))
	}
	return req
}

// PrecvInitPersistent initializes the persistent-backed receive side.
func PrecvInitPersistent(p *sim.Proc, r *mpi.Rank, src, tag int, buf []float64, nparts int) *PersistentRecvRequest {
	parts := EqualPartitions(buf, nparts)
	p.Wait(r.W.Model.PinitCost)
	req := &PersistentRecvRequest{R: r, Src: src, Tag: tag, parts: parts}
	for i, view := range parts {
		req.ops = append(req.ops, r.RecvInit(src, persistentTag(tag, i), view))
	}
	return req
}

// NParts returns the partition count.
func (s *PersistentSendRequest) NParts() int { return len(s.parts) }

// Start begins a send epoch. Nothing is posted yet: each partition's
// persistent send starts at its Pready.
func (s *PersistentSendRequest) Start(p *sim.Proc) {
	s.check()
	if s.started {
		panic("core: Start on started persistent send request")
	}
	p.Wait(s.R.W.Model.HostPostOverhead)
	s.epoch++
	s.started = true
}

// PbufPrepare is a no-op for the persistent backend: two-sided matching
// already guarantees data only lands in a posted receive buffer, which is
// exactly the hazard MPIX_Pbuf_prepare exists to prevent on the RMA path.
func (s *PersistentSendRequest) PbufPrepare(p *sim.Proc) {
	s.check()
	if !s.started {
		panic("core: PbufPrepare before Start")
	}
}

// Pready marks partition part ready: MPI_Start on its persistent send.
func (s *PersistentSendRequest) Pready(p *sim.Proc, part int) {
	s.check()
	if !s.started {
		panic("core: Pready before Start")
	}
	if part < 0 || part >= len(s.ops) {
		panic(fmt.Sprintf("core: Pready partition %d of %d", part, len(s.ops)))
	}
	s.ops[part].Start(p)
}

// Wait completes the epoch: every partition's send must finish.
func (s *PersistentSendRequest) Wait(p *sim.Proc) {
	s.check()
	if !s.started {
		panic("core: Wait before Start")
	}
	for i, op := range s.ops {
		if !op.Started() || op.Epoch() != s.epoch {
			panic(fmt.Sprintf("core: Wait with partition %d never readied this epoch", i))
		}
		op.Wait(p)
	}
	s.started = false
}

// Free releases the request.
func (s *PersistentSendRequest) Free() {
	if s.started {
		panic("core: Free of active persistent send request")
	}
	s.freed = true
}

func (s *PersistentSendRequest) check() {
	if s.freed {
		panic("core: use of freed persistent send request")
	}
}

// NParts returns the partition count.
func (rr *PersistentRecvRequest) NParts() int { return len(rr.parts) }

// Start begins a receive epoch: all partition receives are posted up front
// (the receive side of partitioned communication is not partitioned in
// time — the standard's receiver just needs the buffer ready).
func (rr *PersistentRecvRequest) Start(p *sim.Proc) {
	rr.check()
	if rr.started {
		panic("core: Start on started persistent recv request")
	}
	rr.epoch++
	rr.started = true
	for _, op := range rr.ops {
		op.Start(p)
	}
}

// PbufPrepare is a no-op (see the send side).
func (rr *PersistentRecvRequest) PbufPrepare(p *sim.Proc) {
	rr.check()
	if !rr.started {
		panic("core: PbufPrepare before Start")
	}
}

// Parrived reports whether partition part has been received this epoch.
func (rr *PersistentRecvRequest) Parrived(part int) bool {
	rr.check()
	return rr.ops[part].Done()
}

// Wait completes the epoch: all partitions received.
func (rr *PersistentRecvRequest) Wait(p *sim.Proc) {
	rr.check()
	if !rr.started {
		panic("core: Wait before Start")
	}
	for _, op := range rr.ops {
		op.Wait(p)
	}
	rr.started = false
}

// Free releases the request.
func (rr *PersistentRecvRequest) Free() {
	if rr.started {
		panic("core: Free of active persistent recv request")
	}
	rr.freed = true
}

func (rr *PersistentRecvRequest) check() {
	if rr.freed {
		panic("core: use of freed persistent recv request")
	}
}
