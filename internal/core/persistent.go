package core

import (
	"fmt"

	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

// Persistent-P2P-backed MPI Partitioned: the alternative implementation
// strategy the paper's related work evaluates (Dosanjh et al. implement
// partitioned over MPI persistent send/receive and find an RMA
// implementation performs better; MPI Advance ships a persistent-based
// partitioned library). Each transport partition is one persistent
// send/receive pair; MPI_Pready starts the partition's persistent send.
//
// The backend exists to reproduce that comparison (see
// BenchmarkAblationPersistentVsRMA): two-sided matching and per-partition
// rendezvous make it slower than the UCX/RMA design of SendRequest for the
// same epoch, on the simulator as on the real systems.

// persistentTagBase separates persistent-partitioned traffic; each channel
// consumes a contiguous block of maxPersistentParts tags.
const (
	persistentTagBase  = 1 << 22
	maxPersistentParts = 1 << 10
)

// PersistentSendRequest is the send side of a persistent-backed partitioned
// channel.
type PersistentSendRequest struct {
	R    *mpi.Rank
	Dest int
	Tag  int

	parts   [][]float64
	ops     []*mpi.PersistentOp
	started bool
	epoch   int
	freed   bool
}

// PersistentRecvRequest is the receive side.
type PersistentRecvRequest struct {
	R   *mpi.Rank
	Src int
	Tag int

	parts   [][]float64
	ops     []*mpi.PersistentOp
	started bool
	epoch   int
	freed   bool
}

func persistentTag(tag, part int) int {
	if part >= maxPersistentParts {
		panic(fmt.Sprintf("core: persistent backend supports at most %d partitions", maxPersistentParts))
	}
	return persistentTagBase + tag*maxPersistentParts + part
}

// PsendInitPersistent initializes the persistent-backed send side with
// equal contiguous partitions.
func PsendInitPersistent(p *sim.Proc, r *mpi.Rank, dest, tag int, buf []float64, nparts int) *PersistentSendRequest {
	parts := EqualPartitions(buf, nparts)
	p.Wait(r.W.Model.PinitCost)
	req := &PersistentSendRequest{R: r, Dest: dest, Tag: tag, parts: parts}
	for i, view := range parts {
		req.ops = append(req.ops, r.SendInit(dest, persistentTag(tag, i), view))
	}
	sanRegister(r, req, req.sanDesc(), len(parts))
	return req
}

func (s *PersistentSendRequest) sanDesc() string {
	return fmt.Sprintf("psend-persistent %d->%d tag %d", s.R.ID, s.Dest, s.Tag)
}

// violate reports a state-machine violation on this request through the
// uniform checker; true means "skip the offending operation" (SanRecord).
func (s *PersistentSendRequest) violate(rule, detail string) bool {
	return sanViolate(s.R, rule, s.sanDesc(), detail)
}

// PrecvInitPersistent initializes the persistent-backed receive side.
func PrecvInitPersistent(p *sim.Proc, r *mpi.Rank, src, tag int, buf []float64, nparts int) *PersistentRecvRequest {
	parts := EqualPartitions(buf, nparts)
	p.Wait(r.W.Model.PinitCost)
	req := &PersistentRecvRequest{R: r, Src: src, Tag: tag, parts: parts}
	for i, view := range parts {
		req.ops = append(req.ops, r.RecvInit(src, persistentTag(tag, i), view))
	}
	sanRegister(r, req, req.sanDesc(), len(parts))
	return req
}

func (rr *PersistentRecvRequest) sanDesc() string {
	return fmt.Sprintf("precv-persistent %d->%d tag %d", rr.Src, rr.R.ID, rr.Tag)
}

// violate reports a state-machine violation on this request through the
// uniform checker; true means "skip the offending operation" (SanRecord).
func (rr *PersistentRecvRequest) violate(rule, detail string) bool {
	return sanViolate(rr.R, rule, rr.sanDesc(), detail)
}

// NParts returns the partition count.
func (s *PersistentSendRequest) NParts() int { return len(s.parts) }

// Start begins a send epoch. Nothing is posted yet: each partition's
// persistent send starts at its Pready.
func (s *PersistentSendRequest) Start(p *sim.Proc) {
	if s.check("Start") {
		return
	}
	if s.started {
		if s.violate("double-start", "Start on already-started persistent send request") {
			return
		}
	}
	sanStart(s.R, s)
	p.Wait(s.R.W.Model.HostPostOverhead)
	s.epoch++
	s.started = true
}

// PbufPrepare is a no-op for the persistent backend: two-sided matching
// already guarantees data only lands in a posted receive buffer, which is
// exactly the hazard MPIX_Pbuf_prepare exists to prevent on the RMA path.
func (s *PersistentSendRequest) PbufPrepare(p *sim.Proc) {
	if s.check("PbufPrepare") {
		return
	}
	if !s.started {
		if s.violate("pbufprepare-before-start", "PbufPrepare before Start") {
			return
		}
	}
}

// Pready marks partition part ready: MPI_Start on its persistent send.
func (s *PersistentSendRequest) Pready(p *sim.Proc, part int) {
	if s.check("Pready") {
		return
	}
	if !s.started {
		if s.violate("pready-before-start", "Pready before Start") {
			return
		}
	}
	if part < 0 || part >= len(s.ops) {
		if s.violate("pready-range", fmt.Sprintf("Pready partition %d out of %d", part, len(s.ops))) {
			return
		}
	}
	if op := s.ops[part]; op.Started() && op.Epoch() == s.epoch {
		if sanCheckOnly(s.R, "double-pready", s.sanDesc(),
			fmt.Sprintf("duplicate Pready of partition %d", part)) {
			return
		}
	}
	s.ops[part].Start(p)
}

// Wait completes the epoch: every partition's send must finish.
func (s *PersistentSendRequest) Wait(p *sim.Proc) {
	if s.check("Wait") {
		return
	}
	if !s.started {
		if s.violate("wait-before-start", "Wait before Start") {
			return
		}
	}
	for i, op := range s.ops {
		if !op.Started() || op.Epoch() != s.epoch {
			if s.violate("wait-unready", fmt.Sprintf("Wait with partition %d never readied this epoch", i)) {
				continue
			}
		}
		op.Wait(p)
	}
	s.started = false
	sanComplete(s.R, s)
}

// Free releases the request.
func (s *PersistentSendRequest) Free() {
	if s.started {
		if s.violate("free-active", "Free of persistent send request inside an active epoch") {
			return
		}
	}
	s.freed = true
	sanFree(s.R, s)
}

// check guards against use-after-Free; true means "skip the operation"
// (sanitizer in SanRecord mode).
func (s *PersistentSendRequest) check(op string) bool {
	if s.freed {
		return s.violate("use-after-free", op+" on freed persistent send request")
	}
	return false
}

// NParts returns the partition count.
func (rr *PersistentRecvRequest) NParts() int { return len(rr.parts) }

// Start begins a receive epoch: all partition receives are posted up front
// (the receive side of partitioned communication is not partitioned in
// time — the standard's receiver just needs the buffer ready).
func (rr *PersistentRecvRequest) Start(p *sim.Proc) {
	if rr.check("Start") {
		return
	}
	if rr.started {
		if rr.violate("double-start", "Start on already-started persistent recv request") {
			return
		}
	}
	sanStart(rr.R, rr)
	rr.epoch++
	rr.started = true
	for _, op := range rr.ops {
		op.Start(p)
	}
}

// PbufPrepare is a no-op (see the send side).
func (rr *PersistentRecvRequest) PbufPrepare(p *sim.Proc) {
	if rr.check("PbufPrepare") {
		return
	}
	if !rr.started {
		if rr.violate("pbufprepare-before-start", "PbufPrepare before Start") {
			return
		}
	}
}

// Parrived reports whether partition part has been received this epoch.
func (rr *PersistentRecvRequest) Parrived(part int) bool {
	if rr.check("Parrived") {
		return false
	}
	if part < 0 || part >= len(rr.ops) {
		if rr.violate("parrived-range", fmt.Sprintf("Parrived partition %d out of %d", part, len(rr.ops))) {
			return false
		}
	}
	return rr.ops[part].Done()
}

// Wait completes the epoch: all partitions received.
func (rr *PersistentRecvRequest) Wait(p *sim.Proc) {
	if rr.check("Wait") {
		return
	}
	if !rr.started {
		if rr.violate("wait-before-start", "Wait before Start") {
			return
		}
	}
	for _, op := range rr.ops {
		op.Wait(p)
	}
	rr.started = false
	sanComplete(rr.R, rr)
}

// Free releases the request.
func (rr *PersistentRecvRequest) Free() {
	if rr.started {
		if rr.violate("free-active", "Free of persistent recv request inside an active epoch") {
			return
		}
	}
	rr.freed = true
	sanFree(rr.R, rr)
}

// check guards against use-after-Free; true means "skip the operation"
// (sanitizer in SanRecord mode).
func (rr *PersistentRecvRequest) check(op string) bool {
	if rr.freed {
		return rr.violate("use-after-free", op+" on freed persistent recv request")
	}
	return false
}
