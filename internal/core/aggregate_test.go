package core

import (
	"testing"
	"testing/quick"

	"mpipart/internal/cluster"
	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

func TestEstimateEpochTimePositiveAndMonotoneInBytes(t *testing.T) {
	m := cluster.DefaultModel()
	small := EstimateEpochTime(&m, 64, 1024, 1<<16, m.NVLinkLatency, m.NVLinkBytesPerSec, 1)
	big := EstimateEpochTime(&m, 64, 1024, 1<<24, m.NVLinkLatency, m.NVLinkBytesPerSec, 1)
	if small <= 0 || big <= small {
		t.Fatalf("estimates: small=%v big=%v", small, big)
	}
}

func TestEstimateClampsPartitionCount(t *testing.T) {
	m := cluster.DefaultModel()
	a := EstimateEpochTime(&m, 4, 1024, 1<<20, m.NVLinkLatency, m.NVLinkBytesPerSec, 100)
	b := EstimateEpochTime(&m, 4, 1024, 1<<20, m.NVLinkLatency, m.NVLinkBytesPerSec, 4)
	if a != b {
		t.Fatalf("clamp failed: %v vs %v", a, b)
	}
	if EstimateEpochTime(&m, 4, 1024, 1<<20, m.NVLinkLatency, m.NVLinkBytesPerSec, 0) !=
		EstimateEpochTime(&m, 4, 1024, 1<<20, m.NVLinkLatency, m.NVLinkBytesPerSec, 1) {
		t.Fatal("parts=0 should behave as 1")
	}
}

func TestChooseTransportPartitionsSmallMessagesPreferOne(t *testing.T) {
	m := cluster.DefaultModel()
	// One-wave kernel, tiny message: no overlap to win, per-partition
	// overhead dominates.
	best, choices := ChooseTransportPartitions(&m, 8, 1024, 8*8192, m.NVLinkLatency, m.NVLinkBytesPerSec)
	if best != 1 {
		t.Fatalf("best = %d for a tiny message, want 1 (choices %+v)", best, choices)
	}
}

func TestChooseTransportPartitionsLargeKernelsPreferMore(t *testing.T) {
	m := cluster.DefaultModel()
	// Many-wave kernel over InfiniBand: pipelining partitions overlaps
	// transfer with compute.
	grid := 8192
	bytes := int64(grid) * 8192
	best, _ := ChooseTransportPartitions(&m, grid, 1024, bytes, m.IBLatency, m.IBBytesPerSec)
	if best < 2 {
		t.Fatalf("best = %d for a large inter-node kernel, want >= 2", best)
	}
}

func TestChoicesArePowersOfTwoAndBounded(t *testing.T) {
	m := cluster.DefaultModel()
	_, choices := ChooseTransportPartitions(&m, 4096, 1024, 1<<25, m.IBLatency, m.IBBytesPerSec)
	prev := 0
	for _, c := range choices {
		if c.Parts <= prev || c.Parts > 64 {
			t.Fatalf("bad candidate sequence: %+v", choices)
		}
		if c.Estimate <= 0 {
			t.Fatalf("non-positive estimate: %+v", c)
		}
		prev = c.Parts
	}
}

func TestAutoPrequestOptsCoversGrid(t *testing.T) {
	m := cluster.DefaultModel()
	for _, grid := range []int{1, 7, 64, 1024} {
		for _, intra := range []bool{true, false} {
			opts, parts := AutoPrequestOpts(&m, grid, 1024, int64(grid)*8192, intra)
			if opts.Mech != ProgressionEngine {
				t.Fatal("auto opts must use the progression engine")
			}
			if parts < 1 || parts > grid && grid >= 1 && parts != 1 {
				t.Fatalf("grid %d: parts = %d", grid, parts)
			}
			if opts.BlocksPerTransport < 1 {
				t.Fatalf("grid %d: blocksPerTransport = %d", grid, opts.BlocksPerTransport)
			}
		}
	}
}

// Property: the modeled estimate is monotone in per-partition overhead
// position — i.e. for a fixed config the returned best choice is never
// worse than parts=1 under the model.
func TestChooseNeverWorseThanOneProperty(t *testing.T) {
	m := cluster.DefaultModel()
	f := func(g uint8, sizeKB uint16) bool {
		grid := int(g)%64 + 1
		bytes := (int64(sizeKB) + 1) * 1024
		best, choices := ChooseTransportPartitions(&m, grid, 1024, bytes, m.IBLatency, m.IBBytesPerSec)
		var bestEst, oneEst sim.Duration
		for _, c := range choices {
			if c.Parts == best {
				bestEst = c.Estimate
			}
			if c.Parts == 1 {
				oneEst = c.Estimate
			}
		}
		return bestEst <= oneEst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAutoAggregationEndToEnd runs a real epoch with the auto-chosen
// aggregation and verifies delivery.
func TestAutoAggregationEndToEnd(t *testing.T) {
	runAuto := func(grid int) {
		w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
		n := grid * 1024
		src := make([]float64, n)
		dst := make([]float64, n)
		for i := range src {
			src[i] = float64(i % 97)
		}
		w.Spawn(func(r *mpi.Rank) {
			p := r.Proc()
			switch r.ID {
			case 0:
				opts, parts := AutoPrequestOpts(r.Model(), grid, 1024, int64(n*8), true)
				sreq := PsendInit(p, r, 1, 3, src, parts)
				sreq.Start(p)
				sreq.PbufPrepare(p)
				preq, err := PrequestCreate(p, sreq, opts)
				if err != nil {
					t.Error(err)
					return
				}
				r.Stream.Launch(gpu.KernelSpec{
					Name: "agg", Grid: grid, Block: 1024,
					Body: func(b *gpu.BlockCtx) {
						part := b.Idx / opts.BlocksPerTransport
						if part >= parts {
							part = parts - 1
						}
						preq.PreadyBlockAggregated(b, part)
					},
				})
				sreq.Wait(p)
			case 1:
				_, parts := AutoPrequestOpts(r.Model(), grid, 1024, int64(n*8), true)
				rreq := PrecvInit(p, r, 0, 3, dst, parts)
				rreq.Start(p)
				rreq.PbufPrepare(p)
				rreq.Wait(p)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			if dst[i] != float64(i%97) {
				t.Fatalf("grid %d: dst[%d] = %v", grid, i, dst[i])
			}
		}
	}
	runAuto(4)
	runAuto(64)
}
