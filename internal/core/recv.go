package core

import (
	"fmt"

	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
	"mpipart/internal/sim"
	"mpipart/internal/ucx"
)

// RecvRequest is the receive side of a persistent partitioned channel
// (MPI_Precv_init).
type RecvRequest struct {
	R   *mpi.Rank
	Key chanKey
	Src int
	Tag int

	parts [][]float64

	// arrival holds the receive-side partition-status flags in pinned host
	// memory; the sender's chained puts write the epoch number into them.
	arrival *gpu.Flags

	// deviceMirror, when enabled, is the GPU-global-memory copy of the
	// arrival flags that the device MPIX_Parrived binding polls; MPI_Wait
	// pushes arrivals to it as they are observed (Section IV-A.4).
	deviceMirror *gpu.Flags
	mirrored     []bool

	prepared bool
	epoch    int
	started  bool
	handle   *ucx.MemHandle
	freed    bool
}

// PrecvInit initializes the receive side of a partitioned channel with
// equal contiguous partitions (MPI_Precv_init).
func PrecvInit(p *sim.Proc, r *mpi.Rank, src, tag int, buf []float64, nparts int) *RecvRequest {
	return PrecvInitParts(p, r, src, tag, EqualPartitions(buf, nparts))
}

// PrecvInitParts initializes the receive side with an explicit partition
// layout.
func PrecvInitParts(p *sim.Proc, r *mpi.Rank, src, tag int, parts [][]float64) *RecvRequest {
	st := state(p, r)
	if src < 0 || src >= r.W.Size() {
		panic(fmt.Sprintf("core: PrecvInit from invalid rank %d", src))
	}
	if len(parts) == 0 {
		panic("core: PrecvInit with zero partitions")
	}
	k3 := [3]int{src, r.ID, tag}
	key := chanKey{src: src, dst: r.ID, tag: tag, seq: st.rseq[k3]}
	st.rseq[k3]++

	p.Wait(r.W.Model.PinitCost)
	req := &RecvRequest{
		R:     r,
		Key:   key,
		Src:   src,
		Tag:   tag,
		parts: parts,
		// Arrival flags share the worker's condition so remote completion
		// signals wake this rank's progression engine (the collective layer
		// progresses schedules from there).
		arrival: gpu.NewFlagsShared("arrival:"+key.String(), len(parts), r.Worker.Cond()),
	}
	sanRegister(r, req, req.sanDesc(), len(parts))
	return req
}

func (rr *RecvRequest) sanDesc() string { return "precv " + rr.Key.String() }

// violate reports a state-machine violation on this request through the
// uniform checker; true means "skip the offending operation" (SanRecord).
func (rr *RecvRequest) violate(rule, detail string) bool {
	return sanViolate(rr.R, rule, rr.sanDesc(), detail)
}

// NParts returns the number of transport partitions.
func (rr *RecvRequest) NParts() int { return len(rr.parts) }

// Part returns the receive-side view of partition i.
func (rr *RecvRequest) Part(i int) []float64 { return rr.parts[i] }

// Epoch returns the current communication epoch.
func (rr *RecvRequest) Epoch() int { return rr.epoch }

// Start begins a receive epoch (MPI_Start): flags return to their default
// (unarrived) state.
func (rr *RecvRequest) Start(p *sim.Proc) {
	if rr.checkUsable("Start") {
		return
	}
	if rr.started {
		if rr.violate("double-start", "Start on already-started recv request") {
			return
		}
	}
	sanStart(rr.R, rr)
	p.Wait(rr.R.W.Model.HostPostOverhead)
	rr.epoch++
	rr.started = true
	rr.arrival.Reset()
	if rr.deviceMirror != nil {
		rr.deviceMirror.Reset()
		for i := range rr.mirrored {
			rr.mirrored[i] = false
		}
	}
}

// PbufPrepare guarantees buffer readiness to the sender (MPIX_Pbuf_prepare,
// ② in Fig. 1). On the first call the receiver waits for the sender's
// setup_t, registers the receive buffer and the partition-status flags with
// ucp_mem_map, packs the remote keys, and responds with its own setup
// object. On later calls it only sends the ready-to-receive signal.
func (rr *RecvRequest) PbufPrepare(p *sim.Proc) {
	if rr.checkUsable("PbufPrepare") {
		return
	}
	if !rr.started {
		if rr.violate("pbufprepare-before-start", "PbufPrepare before Start") {
			return
		}
	}
	chargeMCAOnce(p, rr.R)
	if !rr.prepared {
		am := rr.R.Worker.WaitAM(p, amSetup, func(a ucx.AM) bool {
			return a.Payload.(setupMsg).Key == rr.Key
		})
		setup := am.Payload.(setupMsg)
		if setup.NParts != len(rr.parts) || !sameLens(setup.PartLens, rr.parts) {
			panic(fmt.Sprintf("core: send/recv partition layout mismatch on %s", rr.Key))
		}
		// Register the receive buffer and the internal partition-status
		// flags (ucp_mem_map + ucp_rkey_pack).
		rr.handle = rr.R.Worker.MemMap(p, rr.parts, rr.arrival)
		rr.R.Worker.AMSend(setup.Worker, amSetupRsp, setupRsp{
			Key:    rr.Key,
			Rkey:   rr.handle.RkeyPack(),
			Worker: rr.R.Worker.Addr,
		}, 224)
		rr.prepared = true
		return
	}
	rr.R.Worker.AMSend(ucx.WorkerAddr(rr.Src), amRTR, rtrMsg{Key: rr.Key, Epoch: rr.epoch}, 48)
}

// Prepared reports whether registration and the rkey response have happened.
func (rr *RecvRequest) Prepared() bool { return rr.prepared }

// Parrived is the host binding of MPI_Parrived: poll the receive-side
// completion flag of one partition.
func (rr *RecvRequest) Parrived(part int) bool {
	if rr.checkUsable("Parrived") {
		return false
	}
	if part < 0 || part >= len(rr.parts) {
		if rr.violate("parrived-range", fmt.Sprintf("Parrived partition %d out of %d", part, len(rr.parts))) {
			return false
		}
	}
	return rr.arrival.Get(part) == int64(rr.epoch)
}

// ArrivedCount returns how many partitions have arrived this epoch.
func (rr *RecvRequest) ArrivedCount() int {
	n := 0
	for i := 0; i < rr.arrival.Len(); i++ {
		if rr.arrival.Get(i) == int64(rr.epoch) {
			n++
		}
	}
	return n
}

// ArrivalFlags exposes the pinned-host-memory flag array (the collective
// layer polls it directly during schedule progression).
func (rr *RecvRequest) ArrivalFlags() *gpu.Flags { return rr.arrival }

// EnableDeviceParrived allocates the GPU-global-memory mirror of the
// arrival flags for the device MPIX_Parrived binding. The mirror is updated
// during MPI_Wait as partitions arrive (the paper issues a host→device
// memory copy there, because device code polls global memory far more
// cheaply than host memory).
func (rr *RecvRequest) EnableDeviceParrived(p *sim.Proc) *gpu.Flags {
	if rr.checkUsable("EnableDeviceParrived") {
		return rr.deviceMirror
	}
	if rr.deviceMirror == nil {
		p.Wait(rr.R.W.Model.DeviceAllocCost)
		rr.deviceMirror = gpu.NewFlags(rr.R.W.K, "devarrival:"+rr.Key.String(), len(rr.parts))
		rr.mirrored = make([]bool, len(rr.parts))
	}
	return rr.deviceMirror
}

// pushMirror copies newly arrived flags to the device mirror (one small
// async H2D copy per newly observed partition).
func (rr *RecvRequest) pushMirror() {
	if rr.deviceMirror == nil {
		return
	}
	for i := 0; i < rr.arrival.Len(); i++ {
		if !rr.mirrored[i] && rr.arrival.Get(i) == int64(rr.epoch) {
			rr.mirrored[i] = true
			i := i
			epoch := int64(rr.epoch)
			rr.R.W.F.HostToDevice(rr.R.Dev.ID).TransferThen(8, func() {
				rr.deviceMirror.Set(i, epoch)
			})
		}
	}
}

// Wait completes the receive epoch (MPI_Wait): it blocks until every
// partition's arrival flag carries the current epoch, pushing arrivals to
// the device mirror as they are observed.
func (rr *RecvRequest) Wait(p *sim.Proc) {
	if rr.checkUsable("Wait") {
		return
	}
	if !rr.started {
		if rr.violate("wait-before-start", "Wait before Start") {
			return
		}
	}
	epoch := int64(rr.epoch)
	for {
		rr.pushMirror()
		done := true
		for i := 0; i < rr.arrival.Len(); i++ {
			if rr.arrival.Get(i) != epoch {
				done = false
				break
			}
		}
		if done {
			break
		}
		rr.arrival.Cond().Wait(p)
	}
	rr.pushMirror()
	rr.started = false
	sanComplete(rr.R, rr)
}

// Test is the non-blocking completion check (MPI_Test).
func (rr *RecvRequest) Test() bool {
	if rr.checkUsable("Test") {
		return false
	}
	if !rr.started {
		return true
	}
	rr.pushMirror()
	if rr.ArrivedCount() == len(rr.parts) {
		rr.started = false
		sanComplete(rr.R, rr)
		return true
	}
	return false
}

// Free releases the request.
func (rr *RecvRequest) Free() {
	if rr.started {
		if rr.violate("free-active", "Free of recv request inside an active epoch") {
			return
		}
	}
	rr.freed = true
	sanFree(rr.R, rr)
}

// checkUsable guards against use-after-Free; true means "skip the operation"
// (sanitizer in SanRecord mode).
func (rr *RecvRequest) checkUsable(op string) bool {
	if rr.freed {
		return rr.violate("use-after-free", op+" on freed recv request")
	}
	return false
}
