package core

import (
	"testing"

	"mpipart/internal/cluster"
	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

func TestPersistentBackendFullFlow(t *testing.T) {
	const n, nparts = 48, 4
	src, dst := make([]float64, n), make([]float64, n)
	for i := range src {
		src[i] = float64(i + 3)
	}
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInitPersistent(p, r, 1, 5, src, nparts)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			for i := 0; i < nparts; i++ {
				sreq.Pready(p, i)
			}
			sreq.Wait(p)
		case 1:
			rreq := PrecvInitPersistent(p, r, 0, 5, dst, nparts)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
			for i := 0; i < nparts; i++ {
				if !rreq.Parrived(i) {
					t.Errorf("partition %d not arrived after Wait", i)
				}
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != float64(i+3) {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
}

func TestPersistentBackendReuse(t *testing.T) {
	const n, nparts, epochs = 16, 2, 3
	src, dst := make([]float64, n), make([]float64, n)
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	var results [][]float64
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := PsendInitPersistent(p, r, 1, 5, src, nparts)
			for e := 0; e < epochs; e++ {
				for i := range src {
					src[i] = float64(e*10 + i)
				}
				sreq.Start(p)
				for i := 0; i < nparts; i++ {
					sreq.Pready(p, i)
				}
				sreq.Wait(p)
				r.Barrier(p)
			}
			sreq.Free()
		case 1:
			rreq := PrecvInitPersistent(p, r, 0, 5, dst, nparts)
			for e := 0; e < epochs; e++ {
				rreq.Start(p)
				rreq.Wait(p)
				results = append(results, append([]float64(nil), dst...))
				r.Barrier(p)
			}
			rreq.Free()
		default:
			for e := 0; e < epochs; e++ {
				r.Barrier(p)
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for e, res := range results {
		for i, v := range res {
			if v != float64(e*10+i) {
				t.Fatalf("epoch %d elem %d = %v", e, i, v)
			}
		}
	}
}

func TestPersistentBackendMisusePanics(t *testing.T) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		if r.ID != 0 {
			return
		}
		sreq := PsendInitPersistent(p, r, 1, 5, make([]float64, 4), 2)
		mustPanic := func(name string, fn func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}
		mustPanic("Pready before Start", func() { sreq.Pready(p, 0) })
		mustPanic("Wait before Start", func() { sreq.Wait(p) })
		sreq.Start(p)
		mustPanic("double Start", func() { sreq.Start(p) })
		mustPanic("bad partition", func() { sreq.Pready(p, 9) })
		mustPanic("Wait with unready partitions", func() { sreq.Wait(p) })
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRMABeatsPersistentBackend reproduces the related-work finding
// (Dosanjh et al.): an RMA-based partitioned implementation outperforms a
// persistent-P2P one. The effect is clearest where it matters on real
// systems — inter-node transfers with modest per-partition sizes, where
// every two-sided partition pays the CUDA-aware eager/matching path
// (host staging before IB injection) while the RMA path issues puts into
// pre-registered memory.
func TestRMABeatsPersistentBackend(t *testing.T) {
	const grid = 8 // 64 KiB buffer
	const nparts = 8
	n := grid * 1024
	measure := func(persistent bool) sim.Duration {
		var elapsed sim.Duration
		w := mpi.NewWorld(cluster.TwoNodeGH200(), cluster.DefaultModel(), 1)
		w.Spawn(func(r *mpi.Rank) {
			p := r.Proc()
			buf := r.Dev.Alloc(n)
			switch r.ID {
			case 0:
				if persistent {
					sreq := PsendInitPersistent(p, r, 4, 5, buf, nparts)
					runPersistentEpoch(p, sreq) // warm epoch
					r.Barrier(p)
					t0 := p.Now()
					runPersistentEpoch(p, sreq)
					elapsed = sim.Duration(p.Now() - t0)
				} else {
					sreq := PsendInit(p, r, 4, 5, buf, nparts)
					runRMAEpoch(p, sreq)
					r.Barrier(p)
					t0 := p.Now()
					runRMAEpoch(p, sreq)
					elapsed = sim.Duration(p.Now() - t0)
				}
			case 4:
				if persistent {
					rreq := PrecvInitPersistent(p, r, 0, 5, buf, nparts)
					for e := 0; e < 2; e++ {
						rreq.Start(p)
						if e == 1 {
							r.Barrier(p)
						}
						rreq.Wait(p)
					}
				} else {
					rreq := PrecvInit(p, r, 0, 5, buf, nparts)
					for e := 0; e < 2; e++ {
						rreq.Start(p)
						rreq.PbufPrepare(p)
						if e == 1 {
							r.Barrier(p)
						}
						rreq.Wait(p)
					}
				}
			default:
				r.Barrier(p)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	rma := measure(false)
	pers := measure(true)
	if rma >= pers {
		t.Fatalf("RMA epoch (%v) should beat persistent epoch (%v) inter-node", rma, pers)
	}
}

func runPersistentEpoch(p *sim.Proc, s *PersistentSendRequest) {
	s.Start(p)
	for i := 0; i < s.NParts(); i++ {
		s.Pready(p, i)
	}
	s.Wait(p)
}

func runRMAEpoch(p *sim.Proc, s *SendRequest) {
	s.Start(p)
	s.PbufPrepare(p)
	for i := 0; i < s.NParts(); i++ {
		s.Pready(p, i)
	}
	s.Wait(p)
}
