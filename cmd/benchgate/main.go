// Command benchgate is the figure-reproduction gate: it runs the
// designated tier-1 subset of the paper's figure/table points through the
// parallel sweep runner and compares the resulting virtual-time metrics
// EXACTLY against a committed golden baseline (BENCH_GOLDEN.json). The
// simulation is deterministic, so the comparison is bit-for-bit: any drift
// means the reproduction changed, and the gate exits non-zero with a
// readable per-point diff.
//
// Host wall time is recorded in the golden for reference and only
// thresholded (-wall-factor), never compared exactly.
//
// Usage:
//
//	benchgate -check BENCH_GOLDEN.json            # gate (default)
//	benchgate -write BENCH_GOLDEN.json            # regenerate deliberately
//	benchgate -check ... -report diff.txt         # also write the diff report
//	benchgate -workers 8 | -seq                   # pool size (default GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mpipart/internal/bench"
	"mpipart/internal/runner"
)

func main() {
	var (
		check      = flag.String("check", "", "compare a fresh gate run against this golden file (default BENCH_GOLDEN.json)")
		write      = flag.String("write", "", "run the gate and (re)write this golden file instead of checking")
		report     = flag.String("report", "", "also write the diff report (or 'no drift') to this file")
		workers    = flag.Int("workers", 0, "worker pool size; 0 = GOMAXPROCS")
		seq        = flag.Bool("seq", false, "sequential execution (same as -workers 1)")
		wallFactor = flag.Float64("wall-factor", 10, "fail if host wall time exceeds this multiple of the golden's recorded wall time; 0 disables")
	)
	flag.Parse()
	if *write != "" && *check != "" {
		fmt.Fprintln(os.Stderr, "benchgate: -write and -check are mutually exclusive")
		os.Exit(2)
	}
	path := *check
	if *write != "" {
		path = *write
	}
	if path == "" {
		path = "BENCH_GOLDEN.json"
	}
	if *seq {
		*workers = 1
	}

	r := runner.New(*workers)
	t0 := time.Now()
	got := bench.CollectGolden(r, nil)
	wall := time.Since(t0)
	got.Description = "golden virtual-time baselines for the tier-1 figure subset (cmd/benchgate)"
	got.GOARCH = runtime.GOARCH
	got.WallMS = wall.Milliseconds()
	hits, misses := r.Stats()
	fmt.Printf("benchgate: %d points (%d computed, %d memoized) in %.1fs on %d workers\n",
		len(got.Points), misses, hits, wall.Seconds(), r.Workers())

	if *write != "" {
		b, err := bench.EncodeGolden(got)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s\n", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("reading golden: %w (regenerate with benchgate -write %s)", err, path))
	}
	golden, err := bench.DecodeGolden(raw)
	if err != nil {
		fatal(err)
	}
	diffs := golden.Compare(got)
	out := bench.FormatDiffs(diffs)
	if *report != "" {
		if err := os.WriteFile(*report, []byte(out), 0o644); err != nil {
			fatal(err)
		}
	}
	if len(diffs) > 0 {
		fmt.Fprint(os.Stderr, out)
		os.Exit(1)
	}
	fmt.Print(out)
	if *wallFactor > 0 && golden.WallMS > 0 && wall.Milliseconds() > int64(*wallFactor*float64(golden.WallMS)) {
		fmt.Fprintf(os.Stderr, "benchgate: host wall time %v exceeds %.0fx the golden's %dms — the gate itself got too slow\n",
			wall, *wallFactor, golden.WallMS)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
