// Command benchgate is the figure-reproduction gate: it runs the
// designated tier-1 subset of the paper's figure/table points through the
// parallel sweep runner and compares the resulting virtual-time metrics
// EXACTLY against a committed golden baseline (BENCH_GOLDEN.json). The
// simulation is deterministic, so the comparison is bit-for-bit: any drift
// means the reproduction changed, and the gate exits non-zero with a
// readable per-point diff.
//
// Host wall time is recorded in the golden for reference and only
// thresholded (-wall-factor), never compared exactly.
//
// Every run also refreshes a host-performance sidecar (BENCH_PERF.json by
// default, -perf ” disables): wall time, scheduler dispatches,
// dispatches/sec, plus the 100k-actor KernelScale smoke's live-actor count
// and heap bytes/actor. Unlike the golden it is informational — it is how
// kernel perf work is measured without touching the gated virtual-time
// metrics. With -perf-baseline the sidecar grows teeth: the fresh
// dispatches/sec is compared against the committed baseline and the run
// fails if it regressed by more than -perf-regress percent (wall-factor
// style: thresholded, never exact, so machine noise passes and real hot-path
// regressions don't).
//
// Usage:
//
//	benchgate -check BENCH_GOLDEN.json            # gate (default)
//	benchgate -write BENCH_GOLDEN.json            # regenerate deliberately
//	benchgate -check ... -report diff.txt         # also write the diff report
//	benchgate -workers 8 | -seq                   # pool size (default GOMAXPROCS)
//	benchgate -store sweep-store                  # persistent result cache
//	benchgate -server http://127.0.0.1:7077       # gate against a sweepd daemon
//	benchgate -perf BENCH_PERF.json               # host-perf sidecar (default)
//	benchgate -perf-baseline BENCH_PERF.json      # fail on >25% dispatches/sec regression
//	benchgate -cpuprofile cpu.pprof -memprofile mem.pprof
//	benchgate -shuffle-seeds 16                   # schedule-invariance fuzz
//	benchgate -domains 2                          # shard worlds into N virtual-time domains
//
// With -store DIR the runner is backed by the persistent content-addressed
// store (internal/runner/store): a warm store replays the whole gate without
// recomputing, and the result is byte-identical either way. With -server URL
// the points are fetched from a running sweepd daemon instead of computed
// here — the third execution mode that must also gate byte-identically. The
// perf sidecar and shuffle fuzz measure local execution, so -server skips
// the sidecar and refuses -shuffle-seeds.
//
// With -domains N every simulated world shards its kernel into up to N
// per-node virtual-time domains (the in-kernel merged scheduler). The
// merge is byte-identity-preserving by construction, so the SAME golden
// file gates every domain count — the flag exists to prove exactly that,
// plus record the per-domain dispatch breakdown in the perf sidecar.
//
// With -shuffle-seeds N the gate additionally re-runs the entire sweep N
// times under seeded schedule perturbation (sim.SetShuffleSeed): same-time
// event and run-queue tie-breaks are randomized per seed while virtual-time
// semantics are untouched. Every perturbed run must produce a golden
// encoding byte-identical to the unperturbed run — any divergence is a
// reproducible witness that a metric depends on arrival order among
// simultaneous events, which real hardware does not guarantee. The failure
// diff goes to -shuffle-report (and stderr).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mpipart/internal/bench"
	"mpipart/internal/runner"
	"mpipart/internal/runner/store"
	"mpipart/internal/serve"
	"mpipart/internal/sim"
)

func main() {
	var (
		check      = flag.String("check", "", "compare a fresh gate run against this golden file (default BENCH_GOLDEN.json)")
		write      = flag.String("write", "", "run the gate and (re)write this golden file instead of checking")
		report     = flag.String("report", "", "also write the diff report (or 'no drift') to this file")
		workers    = flag.Int("workers", 0, "worker pool size; 0 = GOMAXPROCS")
		seq        = flag.Bool("seq", false, "sequential execution (same as -workers 1)")
		wallFactor = flag.Float64("wall-factor", 10, "fail if host wall time exceeds this multiple of the golden's recorded wall time; 0 disables")
		perf       = flag.String("perf", "BENCH_PERF.json", "write host-perf stats (wall time, dispatches/sec) to this file; '' disables")
		perfBase   = flag.String("perf-baseline", "", "compare this run's dispatches/sec against this committed perf sidecar and fail on regression beyond -perf-regress")
		perfReg    = flag.Float64("perf-regress", 25, "allowed dispatches/sec regression vs -perf-baseline, in percent; 0 disables")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the gate run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the gate run to this file")

		storeDir = flag.String("store", "", "back the runner with a persistent content-addressed store at this root")
		server   = flag.String("server", "", "fetch the gate points from a sweepd daemon at this URL instead of computing locally")

		shuffleSeeds = flag.Int("shuffle-seeds", 0,
			"re-run the sweep under N schedule-perturbation seeds and require byte-identical goldens; 0 disables")
		shuffleReport = flag.String("shuffle-report", "",
			"write the schedule-invariance failure diff to this file (with -shuffle-seeds)")

		domains = flag.Int("domains", 1,
			"shard every simulated world into up to N per-node virtual-time domains; the golden must hold at any value")
	)
	flag.Parse()
	if *write != "" && *check != "" {
		fmt.Fprintln(os.Stderr, "benchgate: -write and -check are mutually exclusive")
		os.Exit(2)
	}
	path := *check
	if *write != "" {
		path = *write
	}
	if path == "" {
		path = "BENCH_GOLDEN.json"
	}
	if *seq {
		*workers = 1
	}
	if *domains < 1 {
		*domains = 1
	}
	sim.SetDefaultDomains(*domains)
	if *server != "" {
		if *storeDir != "" {
			fmt.Fprintln(os.Stderr, "benchgate: -store and -server are mutually exclusive (the daemon owns its store)")
			os.Exit(2)
		}
		if *shuffleSeeds > 0 {
			fmt.Fprintln(os.Stderr, "benchgate: -shuffle-seeds measures local execution; not available with -server")
			os.Exit(2)
		}
		// The perf sidecar records local scheduler cost, which a remote
		// fetch does not exercise; don't clobber it with zeros.
		*perf = ""
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}

	var r *runner.Runner
	if *server == "" {
		if *storeDir != "" {
			ds, err := store.Open(*storeDir)
			if err != nil {
				fatal(err)
			}
			r = runner.NewWithStore(*workers, ds)
		} else {
			r = runner.New(*workers)
		}
	}
	d0 := sim.TotalDispatched()
	e0 := sim.TotalElided()
	pd0 := sim.TotalDispatchedByDomain()
	t0 := time.Now()
	var got bench.Golden
	if *server != "" {
		g, err := serve.NewClient(*server).CollectGolden(nil)
		if err != nil {
			fatal(err)
		}
		got = g
	} else {
		got = bench.CollectGolden(r, nil)
	}
	wall := time.Since(t0)
	dispatches := sim.TotalDispatched() - d0
	elided := sim.TotalElided() - e0
	effective := float64(dispatches+elided) / wall.Seconds()
	var perDomain []int64
	if *domains > 1 {
		for d, n := range sim.TotalDispatchedByDomain() {
			if v := n - pd0[d]; v != 0 {
				for len(perDomain) <= d {
					perDomain = append(perDomain, 0)
				}
				perDomain[d] = v
			}
		}
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	got.Description = "golden virtual-time baselines for the tier-1 figure subset (cmd/benchgate)"
	got.GOARCH = runtime.GOARCH
	got.WallMS = wall.Milliseconds()
	if *server != "" {
		fmt.Printf("benchgate: %d points fetched from %s in %.1fs\n",
			len(got.Points), *server, wall.Seconds())
	} else if *storeDir != "" {
		cs := r.CacheStats()
		fmt.Printf("benchgate: %d points (%d computed, %d from store %s, %d memoized) in %.1fs on %d workers\n",
			len(got.Points), cs.Computed, cs.StoreHits, *storeDir, cs.MemHits, wall.Seconds(), r.Workers())
	} else {
		hits, misses := r.Stats()
		fmt.Printf("benchgate: %d points (%d computed, %d memoized) in %.1fs on %d workers\n",
			len(got.Points), misses, hits, wall.Seconds(), r.Workers())
	}
	if *server == "" {
		fmt.Printf("benchgate: %d dispatches + %d elided, %.0f dispatches/sec, %.0f effective events/sec\n",
			dispatches, elided, float64(dispatches)/wall.Seconds(), effective)
		if len(perDomain) > 0 {
			fmt.Printf("benchgate: domains=%d dispatch breakdown: %v\n", *domains, perDomain)
		}
	}

	// Read the perf baseline before refreshing the sidecar: with both flags
	// at the default BENCH_PERF.json path the gate must compare against the
	// committed figures, not the file this run just wrote.
	var baseRaw []byte
	if *perfBase != "" && *perfReg > 0 && *server == "" {
		raw, err := os.ReadFile(*perfBase)
		if err != nil {
			fatal(fmt.Errorf("reading perf baseline: %w", err))
		}
		baseRaw = raw
	}

	if *perf != "" {
		// The 100k-actor KernelScale smoke: how much a fabric-scale world
		// costs to hold. Runs after the gate measurement window so its
		// dispatches and wall time don't pollute the throughput figures.
		sc := bench.MeasureKernelScale(100_000, 2)
		fmt.Printf("benchgate: kernel scale: %d live actors, %.0f heap bytes/actor\n",
			sc.LiveActors, sc.BytesPerActor)
		p := bench.Perf{
			Schema:                bench.PerfSchema,
			Description:           "host-side cost of the benchgate run (informational; the golden gates virtual time)",
			GOARCH:                runtime.GOARCH,
			Workers:               r.Workers(),
			Points:                len(got.Points),
			WallMS:                wall.Milliseconds(),
			Dispatches:            dispatches,
			DispatchesPerSec:      float64(dispatches) / wall.Seconds(),
			Domains:               *domains,
			PerDomainDispatches:   perDomain,
			ElidedEvents:          elided,
			EffectiveEventsPerSec: effective,
			LiveActors:            sc.LiveActors,
			BytesPerActor:         sc.BytesPerActor,
		}
		b, err := bench.EncodePerf(p)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*perf, b, 0o644); err != nil {
			fatal(err)
		}
	}

	// Host-perf regression gate (wall-factor style: thresholded, never
	// exact). CI points -perf-baseline at the committed sidecar so a
	// scheduler regression beyond the noise band fails the job while the
	// fresh sidecar is still uploaded as an informational artifact.
	if baseRaw != nil {
		base, err := bench.DecodePerf(baseRaw)
		if err != nil {
			fatal(err)
		}
		// The fresh figure always counts elided events (they are simulated
		// work the kernel absorbed, not work that vanished). The baseline
		// figure depends on its schema: schema-2 sidecars recorded the
		// effective rate; schema-1 sidecars predate elision, so their raw
		// dispatches/sec IS the effective rate of their day.
		fresh := effective
		baseRate := base.DispatchesPerSec
		label := "dispatches/sec"
		if base.Schema >= 2 && base.EffectiveEventsPerSec > 0 {
			baseRate = base.EffectiveEventsPerSec
			label = "effective events/sec"
		}
		floor := baseRate * (1 - *perfReg/100)
		if baseRate > 0 && fresh < floor {
			fmt.Fprintf(os.Stderr,
				"benchgate: %s %.0f is below %.0f (baseline %.0f from %s, -perf-regress %.0f%%) — scheduler hot path regressed\n",
				label, fresh, floor, baseRate, *perfBase, *perfReg)
			os.Exit(1)
		}
		fmt.Printf("benchgate: %s %.0f vs baseline %.0f (floor %.0f) — ok\n",
			label, fresh, baseRate, floor)
	}

	if *shuffleSeeds > 0 {
		t1 := time.Now()
		if err := verifyShuffleInvariance(got, *shuffleSeeds, *workers, *shuffleReport); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: %d shuffle seeds byte-identical in %.1fs\n",
			*shuffleSeeds, time.Since(t1).Seconds())
	}

	if *write != "" {
		b, err := bench.EncodeGolden(got)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s\n", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("reading golden: %w (regenerate with benchgate -write %s)", err, path))
	}
	golden, err := bench.DecodeGolden(raw)
	if err != nil {
		fatal(err)
	}
	diffs := golden.Compare(got)
	out := bench.FormatDiffs(diffs)
	if *report != "" {
		if err := os.WriteFile(*report, []byte(out), 0o644); err != nil {
			fatal(err)
		}
	}
	if len(diffs) > 0 {
		fmt.Fprint(os.Stderr, out)
		os.Exit(1)
	}
	fmt.Print(out)
	if *wallFactor > 0 && golden.WallMS > 0 && wall.Milliseconds() > int64(*wallFactor*float64(golden.WallMS)) {
		fmt.Fprintf(os.Stderr, "benchgate: host wall time %v exceeds %.0fx the golden's %dms — the gate itself got too slow\n",
			wall, *wallFactor, golden.WallMS)
		os.Exit(1)
	}
}

// verifyShuffleInvariance re-runs the full gate sweep under n schedule-
// perturbation seeds and requires every perturbed run's golden encoding to
// be byte-identical to the baseline (host-only fields — description, arch,
// wall time — normalized away). Each seed gets a fresh runner: the memo
// cache keys on experiment configuration only, so a shared runner would
// hand back the previous seed's metrics instead of recomputing under the
// new schedule.
func verifyShuffleInvariance(base bench.Golden, n, workers int, reportPath string) error {
	norm := func(g bench.Golden) []byte {
		g.Description, g.GOARCH, g.WallMS = "", "", 0
		b, err := bench.EncodeGolden(g)
		if err != nil {
			fatal(err)
		}
		return b
	}
	want := norm(base)
	for seed := 1; seed <= n; seed++ {
		sim.SetShuffleSeed(int64(seed))
		g := bench.CollectGolden(runner.New(workers), nil)
		sim.SetShuffleSeed(0)
		if !bytes.Equal(norm(g), want) {
			out := fmt.Sprintf("schedule-invariance failure under shuffle seed %d:\n%s",
				seed, bench.FormatDiffs(base.Compare(g)))
			if reportPath != "" {
				if err := os.WriteFile(reportPath, []byte(out), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "benchgate:", err)
				}
			}
			fmt.Fprint(os.Stderr, out)
			return fmt.Errorf("golden metrics depend on tie-break schedule (shuffle seed %d of %d)", seed, n)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
