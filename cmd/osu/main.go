// Command osu runs OSU-microbenchmark-style measurements (latency,
// uni/bi-directional bandwidth, partitioned epoch latency) on the simulated
// GH200 fabric — the standard sanity view of an MPI substrate. The size
// sweep executes through the parallel sweep runner.
//
// Usage:
//
//	osu -kind latency|bw|bibw|platency -inter -max 65536 [-workers N | -seq]
package main

import (
	"flag"
	"fmt"
	"os"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
	"mpipart/internal/runner"
)

func main() {
	var (
		kind    = flag.String("kind", "latency", "latency | bw | bibw | platency")
		inter   = flag.Bool("inter", false, "inter-node instead of intra-node")
		max     = flag.Int("max", 1<<16, "largest message size in elements (8 B each)")
		workers = flag.Int("workers", 0, "parallel sweep workers; 0 = GOMAXPROCS")
		seq     = flag.Bool("seq", false, "sequential execution (same as -workers 1)")
	)
	flag.Parse()
	if *seq {
		*workers = 1
	}
	topo, peer := cluster.OneNodeGH200(), 1
	if *inter {
		topo, peer = cluster.TwoNodeGH200(), 4
	}
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "osu: %v\n", r)
			os.Exit(1)
		}
	}()
	bench.RunJob(runner.New(*workers), bench.OSUJob(*kind, topo, peer, *max)).Fprint(os.Stdout)
}
