// Command osu runs OSU-microbenchmark-style measurements (latency,
// uni/bi-directional bandwidth, partitioned epoch latency) on the simulated
// GH200 fabric — the standard sanity view of an MPI substrate.
//
// Usage:
//
//	osu -kind latency|bw|bibw|platency -inter -max 65536
package main

import (
	"flag"
	"fmt"
	"os"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
)

func main() {
	var (
		kind  = flag.String("kind", "latency", "latency | bw | bibw | platency")
		inter = flag.Bool("inter", false, "inter-node instead of intra-node")
		max   = flag.Int("max", 1<<16, "largest message size in elements (8 B each)")
	)
	flag.Parse()
	topo, peer := cluster.OneNodeGH200(), 1
	if *inter {
		topo, peer = cluster.TwoNodeGH200(), 4
	}
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "osu: %v\n", r)
			os.Exit(1)
		}
	}()
	bench.OSUTable(*kind, topo, peer, *max).Fprint(os.Stdout)
}
