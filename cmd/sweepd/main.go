// Command sweepd is the sweep-serving daemon: it answers batched sweep
// requests — (topology, cost model, params) triples addressed as catalog
// point IDs, optionally under a perturbed cost model — with the
// deterministic virtual-time metrics of the simulated GH200 testbed,
// through a persistent content-addressed result cache.
//
// The stack per request: identical in-flight requests coalesce into one
// computation (batcher), results are served from an on-disk
// content-addressed store when warm and written back when cold, and a
// bounded pool runs the simulations that remain. Every byte served is
// verifiable: the same points gate byte-identically against
// BENCH_GOLDEN.json whether computed in-process, read from a warm store,
// or fetched from this daemon (cmd/benchgate -server).
//
// Usage:
//
//	sweepd                                  # 127.0.0.1:7077, store in ./sweepd-store
//	sweepd -addr :8080 -store /var/sweep    # custom bind + store root
//	sweepd -store ''                        # no persistence (coalescing only)
//	sweepd -workers 8                       # concurrent-simulation bound
//	sweepd -recent 2048                     # /metrics per-request history
//
// Endpoints: POST /sweep, GET /metrics (?format=csv), GET /catalog,
// GET /healthz. See internal/serve for the request/response shapes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpipart/internal/runner"
	"mpipart/internal/runner/store"
	"mpipart/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7077", "listen address")
		storeDir = flag.String("store", "sweepd-store", "content-addressed result store root; '' disables persistence")
		workers  = flag.Int("workers", 0, "max concurrent simulations; 0 = GOMAXPROCS")
		recent   = flag.Int("recent", 512, "per-request metrics records kept for /metrics")
	)
	flag.Parse()

	var st runner.Store
	if *storeDir != "" {
		ds, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("sweepd: %v", err)
		}
		st = ds
		log.Printf("sweepd: store at %s (key schema v%d)", ds.Root(), runner.KeySchema)
	} else {
		log.Printf("sweepd: no persistent store (coalescing only)")
	}

	srv := serve.NewServer(serve.Config{Store: st, Workers: *workers, Recent: *recent})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight batches.
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	log.Printf("sweepd: listening on %s (%d catalog points)", *addr, len(serve.CatalogIDs()))

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sweepd: %v", err)
		}
	case sig := <-sigc:
		log.Printf("sweepd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("sweepd: shutdown: %v", err)
		}
	}
	snap := srv.Metrics()
	fmt.Printf("sweepd: served %d requests in %d batches (%d computed, %d store hits, %d coalesced, %d errors)\n",
		snap.Totals.Requests, snap.Totals.Batches, snap.Totals.Computed,
		snap.Totals.StoreHits, snap.Totals.Coalesced, snap.Totals.Errors)
}
