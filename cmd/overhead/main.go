// Command overhead regenerates Table I: the measured overheads of the
// partitioned API calls (initialization, device-request creation, and
// buffer-preparation synchronization).
package main

import (
	"os"

	"mpipart/internal/bench"
)

func main() {
	bench.TableI().Fprint(os.Stdout)
}
