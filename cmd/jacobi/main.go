// Command jacobi runs the Jacobi solver application benchmark (Figs. 8/9):
// a 2-D Poisson problem decomposed across GPUs with halo exchange,
// comparing the traditional and partitioned communication variants.
//
// Usage:
//
//	jacobi -mult 8 -nodes 2 -iters 4
package main

import (
	"flag"
	"fmt"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
	"mpipart/internal/jacobi"
)

func main() {
	var (
		mult  = flag.Int("mult", 8, "problem multiplier (tile edge = 32*mult)")
		nodes = flag.Int("nodes", 1, "nodes (1 = four GH200 2x2, 2 = eight GH200 4x2)")
		iters = flag.Int("iters", bench.JacobiIters, "Jacobi sweeps")
	)
	flag.Parse()

	topo := cluster.OneNodeGH200()
	if *nodes == 2 {
		topo = cluster.TwoNodeGH200()
	}
	px, py := jacobi.Decompose(topo.TotalGPUs())
	tile := bench.JacobiBaseTile * *mult
	cfg := jacobi.Config{PX: px, PY: py, NX: tile, NY: tile, Iters: *iters}

	tr := bench.MeasureJacobi(topo, cfg, jacobi.Traditional)
	pa := bench.MeasureJacobi(topo, cfg, jacobi.Partitioned)
	fmt.Printf("jacobi %dx%d tiles of %dx%d, %d iterations\n", px, py, tile, tile, *iters)
	fmt.Printf("traditional : %10.3f GFLOP/s  (%.3f ms, checksum %.6f)\n",
		tr.GFLOPs, tr.Elapsed.Seconds()*1e3, tr.Checksum)
	fmt.Printf("partitioned : %10.3f GFLOP/s  (%.3f ms, checksum %.6f)  %.3fx\n",
		pa.GFLOPs, pa.Elapsed.Seconds()*1e3, pa.Checksum, pa.GFLOPs/tr.GFLOPs)
	if tr.Checksum != pa.Checksum {
		fmt.Println("WARNING: variants disagree numerically")
	}
}
