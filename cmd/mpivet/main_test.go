package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExitCodes pins the exit-code contract: 0 clean, 1 findings, 2 on
// usage/load errors — CI depends on distinguishing "violations" from "the
// tool itself broke".
func TestExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer

	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "simclock") || !strings.Contains(out.String(), "deadlockorder") {
		t.Fatalf("-list output missing rules:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-rules", "no-such-rule"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule: exit %d, want 2", code)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"./no/such/dir"}, &out, &errOut); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json", "-sarif"}, &out, &errOut); code != 2 {
		t.Fatalf("-json -sarif together: exit %d, want 2", code)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-rules", "simclock", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("clean package: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestSummaryMode checks -summary dumps effect summaries for the scheduler
// package (Proc.Wait must show Blocks).
func TestSummaryMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-summary", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-summary: exit %d, stderr %s", code, errOut.String())
	}
	found := false
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "(Proc).Wait") && strings.Contains(line, "Blocks") {
			found = true
		}
	}
	if !found {
		t.Fatalf("-summary output lacks a Blocks line for (Proc).Wait:\n%s", out.String())
	}
}

// TestSARIFMode checks the -sarif envelope is valid SARIF 2.1.0.
func TestSARIFMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-sarif", "-rules", "simclock", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-sarif: exit %d, stderr %s", code, errOut.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "mpivet" {
		t.Fatalf("unexpected SARIF envelope: %s", out.String())
	}
	if len(log.Runs[0].Tool.Driver.Rules) == 0 {
		t.Fatal("SARIF driver has no rules")
	}
	if log.Runs[0].Results == nil {
		t.Fatal("SARIF results must be present (empty array when clean)")
	}
}

// TestTimingMode pins the -timing contract: a per-analyzer wall-time table on
// stderr, a timings section in the -json report (absent without the flag so
// the golden artifact stays byte-stable), and the -max-rule-time budget that
// turns a slow analyzer into a failing exit for CI.
func TestTimingMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-timing", "-rules", "simclock", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-timing: exit %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "simclock") || !strings.Contains(errOut.String(), "ms") {
		t.Fatalf("-timing stderr lacks the wall-time table:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json", "-timing", "-rules", "simclock", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-json -timing: exit %d, stderr %s", code, errOut.String())
	}
	var rep struct {
		Timings []struct {
			Rule   string  `json:"rule"`
			Millis float64 `json:"millis"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json -timing output is not JSON: %v", err)
	}
	rules := make(map[string]bool)
	for _, tm := range rep.Timings {
		rules[tm.Rule] = true
	}
	if !rules["simclock"] || !rules["(callgraph)"] {
		t.Fatalf("timings section missing simclock/(callgraph): %s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json", "-rules", "simclock", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-json: exit %d, stderr %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "timings") {
		t.Fatalf("-json without -timing must omit the timings section:\n%s", out.String())
	}

	// An absurdly small budget turns the run into exit 1 with a named
	// offender; a generous one stays clean.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-max-rule-time", "1ns", "-rules", "simclock", "./internal/sim"}, &out, &errOut); code != 1 {
		t.Fatalf("-max-rule-time 1ns: exit %d, want 1\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "over the 1ns budget") {
		t.Fatalf("budget breach not reported:\n%s", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-max-rule-time", "10m", "-rules", "simclock", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-max-rule-time 10m: exit %d, want 0\nstderr: %s", code, errOut.String())
	}
}

// TestJSONDeterminism runs the full pipeline twice over the same packages and
// requires byte-identical JSON — the ordering guarantee downstream tooling
// (and the golden CI artifact) depends on.
func TestJSONDeterminism(t *testing.T) {
	outputs := make([]string, 2)
	for i := range outputs {
		var out, errOut bytes.Buffer
		if code := run([]string{"-json", "./internal/sim", "./internal/core", "./internal/analysis"}, &out, &errOut); code != 0 {
			t.Fatalf("run %d: exit %d, stderr %s", i, code, errOut.String())
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("two runs differ:\n--- first\n%s\n--- second\n%s", outputs[0], outputs[1])
	}
}
