// Command mpivet runs the repository's custom static-analysis suite
// (internal/analysis) over the given packages and reports violations of the
// simulation's correctness invariants: wall-clock use in sim-driven code,
// impure kernel bodies, partitioned-API state-machine misuse, mutexes held
// across virtual-time waits, ignored errors, and non-exhaustive enum
// switches.
//
// Usage:
//
//	mpivet [-json] [-rules simclock,kernelpurity,...] [packages]
//
// Packages are directories or recursive "dir/..." patterns relative to the
// module root (default "./..."). The exit status is 0 when clean, 1 when
// findings were reported, 2 on usage or load errors.
//
// A finding is suppressed by the comment
//
//	//lint:ignore mpivet/<rule> <reason>
//
// on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpipart/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			a := analysis.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mpivet: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpivet: %v\n", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpivet: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpivet: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(analyzers, pkgs)
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "mpivet: %v\n", err)
			os.Exit(2)
		}
	} else if err := analysis.WriteText(os.Stdout, diags); err != nil {
		fmt.Fprintf(os.Stderr, "mpivet: %v\n", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:strings.LastIndex(dir, "/")+1]
		parent = strings.TrimSuffix(parent, "/")
		if parent == dir || parent == "" {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
