// Command mpivet runs the repository's custom static-analysis suite
// (internal/analysis) over the given packages and reports violations of the
// simulation's correctness invariants: wall-clock use in sim-driven code
// (including laundered through helpers), impure kernel bodies,
// partitioned-API state-machine misuse (intra- and interprocedural), mutexes
// held across virtual-time waits, lock acquisition-order cycles, ignored
// errors, non-exhaustive enum switches, lockset races in the
// goroutine-concurrent host serving layer, and continuation-Task
// discipline violations in the converted actors.
//
// Usage:
//
//	mpivet [-json|-sarif] [-summary] [-strict-ignores] [-rules r1,r2]
//	       [-timing] [-max-rule-time d] [packages]
//
// Packages are directories or recursive "dir/..." patterns relative to the
// module root (default "./..."). The exit status is 0 when clean, 1 when
// findings were reported, 2 on usage or load errors.
//
// -summary dumps the per-function interprocedural effect summaries (the
// lattice the analyzers consume) instead of findings. -sarif emits SARIF
// 2.1.0 with interprocedural chains as codeFlows. -strict-ignores
// additionally reports suppression directives that no longer fire. -timing
// appends a per-analyzer wall-time table to stderr (and a timings section to
// the -json report) so CI can bisect slow rules; -max-rule-time fails the
// run (exit 1) when any single analyzer exceeds the given duration.
//
// A finding is suppressed by the comment
//
//	//lint:ignore mpivet/<rule> <reason>
//
// on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpipart/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code:
// 0 clean, 1 findings, 2 usage/load/internal error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpivet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 (chains as codeFlows)")
	summary := fs.Bool("summary", false, "dump per-function effect summaries instead of findings")
	strict := fs.Bool("strict-ignores", false, "report lint:ignore directives that no longer suppress anything")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	timing := fs.Bool("timing", false, "report per-analyzer wall time (stderr table; timings section in -json)")
	maxRuleTime := fs.Duration("max-rule-time", 0, "fail when any analyzer exceeds this duration (0 = no budget)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "mpivet: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := analysis.Analyzers()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			a := analysis.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "mpivet: unknown rule %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "mpivet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "mpivet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mpivet: %v\n", err)
		return 2
	}

	if *summary {
		prog := analysis.BuildProgram(pkgs)
		if err := prog.WriteSummaries(stdout); err != nil {
			fmt.Fprintf(stderr, "mpivet: %v\n", err)
			return 2
		}
		return 0
	}

	diags, timings := analysis.RunTimed(analyzers, pkgs, analysis.Options{StrictIgnores: *strict})
	switch {
	case *jsonOut && *timing:
		err = analysis.WriteJSONTimed(stdout, diags, timings)
	case *jsonOut:
		err = analysis.WriteJSON(stdout, diags)
	case *sarifOut:
		err = analysis.WriteSARIF(stdout, diags)
	default:
		err = analysis.WriteText(stdout, diags)
	}
	if err != nil {
		fmt.Fprintf(stderr, "mpivet: %v\n", err)
		return 2
	}
	if *timing {
		if err := analysis.WriteTimings(stderr, timings); err != nil {
			fmt.Fprintf(stderr, "mpivet: %v\n", err)
			return 2
		}
	}
	over := false
	if *maxRuleTime > 0 {
		budget := float64(*maxRuleTime) / 1e6 // duration -> ms
		for _, tm := range timings {
			if tm.Millis > budget {
				fmt.Fprintf(stderr, "mpivet: analyzer %s took %.1f ms, over the %s budget\n",
					tm.Rule, tm.Millis, *maxRuleTime)
				over = true
			}
		}
	}
	if len(diags) > 0 || over {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:strings.LastIndex(dir, "/")+1]
		parent = strings.TrimSuffix(parent, "/")
		if parent == dir || parent == "" {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
