// Command dlbench runs the data-parallel deep-learning proxy (Figs. 10/11):
// a Binary Cross-Entropy gradient kernel plus per-step gradient allreduce,
// comparing MPI_Allreduce, the partitioned allreduce, and NCCL.
//
// Usage:
//
//	dlbench -grid 1024 -nodes 2 -steps 3
package main

import (
	"flag"
	"fmt"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
	"mpipart/internal/dl"
	"mpipart/internal/mpi"
	"mpipart/internal/nccl"
)

func main() {
	var (
		grid  = flag.Int("grid", 512, "gradient kernel grid size (8 KiB per grid)")
		nodes = flag.Int("nodes", 1, "nodes (1 = four GH200, 2 = eight GH200)")
		steps = flag.Int("steps", bench.DLSteps, "training steps")
	)
	flag.Parse()

	topo := cluster.OneNodeGH200()
	if *nodes == 2 {
		topo = cluster.TwoNodeGH200()
	}
	cfg := dl.Config{Params: *grid * 1024, Steps: *steps, UserParts: 4}

	tr := bench.MeasureDL(topo, cfg, func(r *mpi.Rank, _ *nccl.Comm, c dl.Config) dl.Stats {
		return dl.MPIAllreduce(r, c)
	})
	pa := bench.MeasureDL(topo, cfg, func(r *mpi.Rank, _ *nccl.Comm, c dl.Config) dl.Stats {
		return dl.PartitionedAllreduce(r, c)
	})
	nc := bench.MeasureDL(topo, cfg, dl.NCCLAllreduce)
	fmt.Printf("BCE training, %.1f MiB gradients, %d GPUs, %d steps\n",
		float64(*grid)*1024*8/(1<<20), topo.TotalGPUs(), *steps)
	fmt.Printf("MPI_Allreduce        : %12.3f us/step  (weights %.6f)\n", tr.StepTime.Micros(), tr.WeightSum)
	fmt.Printf("partitioned allreduce: %12.3f us/step  (weights %.6f)\n", pa.StepTime.Micros(), pa.WeightSum)
	fmt.Printf("NCCL                 : %12.3f us/step  (weights %.6f)\n", nc.StepTime.Micros(), nc.WeightSum)
}
