// Command collbench benchmarks the three allreduce implementations at one
// configuration: traditional MPI_Allreduce (host-staged), the partitioned
// allreduce (GPU-initiated, Algorithm 2 progression), and the NCCL-style
// fused ring.
//
// Usage:
//
//	collbench -grid 1024 -nodes 2 -userparts 4
package main

import (
	"flag"
	"fmt"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
)

func main() {
	var (
		grid  = flag.Int("grid", 1024, "kernel grid size (8 KiB per grid)")
		nodes = flag.Int("nodes", 1, "nodes (1 = four GH200, 2 = eight GH200)")
		up    = flag.Int("userparts", 4, "user partitions of the partitioned allreduce")
	)
	flag.Parse()

	topo := cluster.OneNodeGH200()
	if *nodes == 2 {
		topo = cluster.TwoNodeGH200()
	}
	cfg := bench.AllreduceConfig{Topo: topo, Grid: *grid, UserParts: *up}
	bytes := float64(*grid) * 1024 * 8

	tr := bench.MeasureMPIAllreduce(cfg)
	pa := bench.MeasurePartitionedAllreduce(cfg)
	nc := bench.MeasureNCCLAllreduce(cfg)
	fmt.Printf("allreduce of %.1f MiB across %d GPUs (kernel + communication)\n",
		bytes/(1<<20), topo.TotalGPUs())
	fmt.Printf("MPI_Allreduce        : %12.3f us\n", tr.Micros())
	fmt.Printf("partitioned allreduce: %12.3f us   (%.1fx over MPI)\n", pa.Micros(), float64(tr)/float64(pa))
	fmt.Printf("NCCL                 : %12.3f us   (partitioned trails by %.1f us)\n",
		nc.Micros(), (pa - nc).Micros())
}
