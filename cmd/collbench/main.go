// Command collbench benchmarks the three allreduce implementations at one
// configuration: traditional MPI_Allreduce (host-staged), the partitioned
// allreduce (GPU-initiated, Algorithm 2 progression), and the NCCL-style
// fused ring. The three worlds execute concurrently through the parallel
// sweep runner.
//
// Usage:
//
//	collbench -grid 1024 -nodes 2 -userparts 4 [-workers N | -seq]
package main

import (
	"flag"
	"fmt"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
	"mpipart/internal/runner"
)

func main() {
	var (
		grid    = flag.Int("grid", 1024, "kernel grid size (8 KiB per grid)")
		nodes   = flag.Int("nodes", 1, "nodes (1 = four GH200, 2 = eight GH200)")
		up      = flag.Int("userparts", 4, "user partitions of the partitioned allreduce")
		workers = flag.Int("workers", 0, "parallel sweep workers; 0 = GOMAXPROCS")
		seq     = flag.Bool("seq", false, "sequential execution (same as -workers 1)")
	)
	flag.Parse()
	if *seq {
		*workers = 1
	}

	topo := cluster.OneNodeGH200()
	if *nodes == 2 {
		topo = cluster.TwoNodeGH200()
	}
	cfg := bench.AllreduceConfig{Topo: topo, Grid: *grid, UserParts: *up}
	bytes := float64(*grid) * 1024 * 8

	ms := runner.New(*workers).Run([]runner.Point{
		bench.MPIAllreducePoint("collbench/mpi", cfg),
		bench.PartitionedAllreducePoint("collbench/partitioned", cfg),
		bench.NCCLAllreducePoint("collbench/nccl", cfg),
	})
	tr, pa, nc := ms[0]["elapsed_ns"], ms[1]["elapsed_ns"], ms[2]["elapsed_ns"]
	fmt.Printf("allreduce of %.1f MiB across %d GPUs (kernel + communication)\n",
		bytes/(1<<20), topo.TotalGPUs())
	fmt.Printf("MPI_Allreduce        : %12.3f us\n", tr/1000)
	fmt.Printf("partitioned allreduce: %12.3f us   (%.1fx over MPI)\n", pa/1000, tr/pa)
	fmt.Printf("NCCL                 : %12.3f us   (partitioned trails by %.1f us)\n",
		nc/1000, (pa-nc)/1000)
}
