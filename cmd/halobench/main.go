// Command halobench runs the halo-exchange micro-benchmark (after the
// partitioned benchmark suite of Temuçin et al., the paper's reference
// [16]): per-iteration time of a 2-D four-neighbour halo exchange,
// traditional vs partitioned, across halo sizes. The size sweep executes
// through the parallel sweep runner.
//
// Usage:
//
//	halobench -nodes 2 -max 65536 [-workers N | -seq]
package main

import (
	"flag"
	"os"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
	"mpipart/internal/runner"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 1, "nodes (1 = four GH200 2x2, 2 = eight GH200 4x2)")
		max     = flag.Int("max", 1<<16, "largest halo size in elements (8 B each)")
		workers = flag.Int("workers", 0, "parallel sweep workers; 0 = GOMAXPROCS")
		seq     = flag.Bool("seq", false, "sequential execution (same as -workers 1)")
	)
	flag.Parse()
	if *seq {
		*workers = 1
	}
	topo := cluster.OneNodeGH200()
	if *nodes == 2 {
		topo = cluster.TwoNodeGH200()
	}
	bench.RunJob(runner.New(*workers), bench.HaloJob(topo, *max)).Fprint(os.Stdout)
}
