// Command sweep is the model-sensitivity ablation: it varies one calibrated
// cost-model parameter across a range and reports how the paper's headline
// results move. The conclusions (GPU-initiated partitioned beats the
// traditional model; Kernel Copy beats the Progression Engine intra-node)
// should be robust across plausible hardware, not artifacts of one
// parameter choice. All (model point × measurement) worlds execute through
// the parallel sweep runner.
//
// Usage:
//
//	sweep -param sync|launch|flaggap|nvlink|ib -grid 64 [-workers N | -seq]
package main

import (
	"flag"
	"fmt"
	"os"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
	"mpipart/internal/core"
	"mpipart/internal/runner"
	"mpipart/internal/sim"
)

func main() {
	var (
		param   = flag.String("param", "sync", "parameter to sweep: sync | launch | flaggap | nvlink | ib")
		grid    = flag.Int("grid", 64, "kernel grid size")
		workers = flag.Int("workers", 0, "parallel sweep workers; 0 = GOMAXPROCS")
		seq     = flag.Bool("seq", false, "sequential execution (same as -workers 1)")
	)
	flag.Parse()
	if *seq {
		*workers = 1
	}

	type point struct {
		label string
		apply func(m *cluster.Model)
	}
	var points []point
	switch *param {
	case "sync":
		for _, us := range []float64{2, 4, 7.8, 12, 20} {
			us := us
			points = append(points, point{
				label: fmt.Sprintf("streamSync=%.1fus", us),
				apply: func(m *cluster.Model) { m.StreamSyncCost = sim.Microseconds(us) },
			})
		}
	case "launch":
		for _, us := range []float64{0.5, 1.2, 2.5, 5} {
			us := us
			points = append(points, point{
				label: fmt.Sprintf("launch=%.1fus", us),
				apply: func(m *cluster.Model) { m.KernelLaunchCost = sim.Microseconds(us) },
			})
		}
	case "flaggap":
		for _, ns := range []float64{100, 260, 500, 1000} {
			ns := ns
			points = append(points, point{
				label: fmt.Sprintf("flagGap=%.0fns", ns),
				apply: func(m *cluster.Model) { m.HostFlagWriteGap = sim.Nanoseconds(ns) },
			})
		}
	case "nvlink":
		for _, gbps := range []float64{75, 150, 300, 450} {
			gbps := gbps
			points = append(points, point{
				label: fmt.Sprintf("nvlink=%.0fGB/s", gbps),
				apply: func(m *cluster.Model) { m.NVLinkBytesPerSec = gbps * 1e9 },
			})
		}
	case "ib":
		for _, gbps := range []float64{12, 24, 48, 96} {
			gbps := gbps
			points = append(points, point{
				label: fmt.Sprintf("ib=%.0fGB/s", gbps),
				apply: func(m *cluster.Model) { m.IBBytesPerSec = gbps * 1e9 },
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q\n", *param)
		os.Exit(2)
	}

	// Declare the five measurements of every model point, then execute the
	// whole matrix through one runner call.
	var rps []runner.Point
	for pi, pt := range points {
		model := cluster.DefaultModel()
		pt.apply(&model)
		m := model
		intra := bench.P2PConfig{Topo: cluster.OneNodeGH200(), Receiver: 1, Grid: *grid, Parts: 1, Model: &m}
		inter := bench.P2PConfig{Topo: cluster.TwoNodeGH200(), Receiver: 4, Grid: *grid, Parts: 2, Model: &m}
		id := fmt.Sprintf("sweep/%s/%d", pt.label, pi)
		rps = append(rps,
			bench.TraditionalPoint(id+"/tr-intra", intra),
			bench.PartitionedPoint(id+"/pe-intra", intra, core.ProgressionEngine),
			bench.PartitionedPoint(id+"/kc-intra", intra, core.KernelCopy),
			bench.TraditionalPoint(id+"/tr-inter", inter),
			bench.PartitionedPoint(id+"/pe-inter", inter, core.ProgressionEngine),
		)
	}
	ms := runner.New(*workers).Run(rps)

	fmt.Printf("sensitivity of Fig. 4/5 headline speedups to %s (grid %d)\n\n", *param, *grid)
	fmt.Printf("%-22s %14s %14s %14s\n", "model point", "PE intra (x)", "KC intra (x)", "PE inter (x)")
	for pi, pt := range points {
		tr := ms[5*pi]["elapsed_ns"]
		pe := ms[5*pi+1]["elapsed_ns"]
		kc := ms[5*pi+2]["elapsed_ns"]
		trI := ms[5*pi+3]["elapsed_ns"]
		peI := ms[5*pi+4]["elapsed_ns"]
		fmt.Printf("%-22s %14.3f %14.3f %14.3f\n", pt.label, tr/pe, tr/kc, trI/peI)
	}
	fmt.Println("\nrobust if the ordering (KC > PE > 1.0) holds at every point")
}
