// Command figures regenerates every table and figure of the paper's
// evaluation (Section VI) on the simulated GH200 testbed.
//
// Usage:
//
//	figures -all                 # everything (default)
//	figures -fig 4               # one figure
//	figures -table 1             # Table I
//	figures -max-grid 8192       # raise the sweep cap (figs 2,4,5,6,7,10,11)
//	figures -max-mult 32         # Jacobi multiplier cap (figs 8,9)
//	figures -csv                 # CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"

	"mpipart/internal/bench"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to regenerate (2-11); 0 = per -all")
		table   = flag.Int("table", 0, "table number to regenerate (1)")
		all     = flag.Bool("all", false, "regenerate every figure and table")
		maxGrid = flag.Int("max-grid", 2048, "largest kernel grid size in sweeps")
		maxMult = flag.Int("max-mult", 32, "largest Jacobi problem multiplier")
		csv     = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	if *fig == 0 && *table == 0 {
		*all = true
	}
	emit := func(t *bench.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}
	run := func(n int) {
		switch n {
		case 2:
			// Fig. 2 has no data buffers, so the full paper range is cheap.
			mg := *maxGrid
			if mg < 131072 {
				mg = 131072
			}
			emit(bench.Fig2(mg))
		case 3:
			emit(bench.Fig3())
		case 4:
			emit(bench.Fig4(*maxGrid))
		case 5:
			emit(bench.Fig5(*maxGrid))
		case 6:
			emit(bench.Fig6(*maxGrid))
		case 7:
			emit(bench.Fig7(*maxGrid))
		case 8:
			emit(bench.Fig8(*maxMult))
		case 9:
			emit(bench.Fig9(*maxMult))
		case 10:
			emit(bench.Fig10(*maxGrid))
		case 11:
			emit(bench.Fig11(*maxGrid))
		default:
			fmt.Fprintf(os.Stderr, "figures: unknown figure %d\n", n)
			os.Exit(2)
		}
	}
	if *all {
		for n := 2; n <= 11; n++ {
			run(n)
		}
		emit(bench.TableI())
		return
	}
	if *fig != 0 {
		run(*fig)
	}
	if *table == 1 {
		emit(bench.TableI())
	} else if *table != 0 {
		fmt.Fprintf(os.Stderr, "figures: unknown table %d\n", *table)
		os.Exit(2)
	}
}
