// Command figures regenerates every table and figure of the paper's
// evaluation (Section VI) on the simulated GH200 testbed. The points of
// all requested figures are executed through one parallel sweep runner
// (internal/runner): independent simulated worlds fan out over a worker
// pool, results assemble in figure order, and configurations repeated
// across figures are computed once. Determinism of the sim kernel makes
// the output identical at any worker count.
//
// Usage:
//
//	figures -all                 # everything (default)
//	figures -fig 4               # one figure
//	figures -table 1             # Table I
//	figures -max-grid 8192       # raise the sweep cap (figs 2,4,5,6,7,10,11)
//	figures -max-mult 32         # Jacobi multiplier cap (figs 8,9)
//	figures -csv                 # CSV instead of aligned tables
//	figures -workers 8           # worker pool size (0 = GOMAXPROCS)
//	figures -seq                 # sequential (same as -workers 1)
//	figures -outdir figures-csv  # also write one <name>.csv per figure
//	figures -store sweep-store   # persistent content-addressed result cache
//	figures -require-warm        # with -store: fail if anything recomputed
//
// With -store DIR every point's metrics are read from / written back to the
// on-disk content-addressed store, so a second run regenerates all output
// without simulating anything. -require-warm turns that into an assertion:
// the run exits non-zero if any point was computed rather than replayed —
// the nightly cache-warm job uses it to prove a 100% hit rate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mpipart/internal/bench"
	"mpipart/internal/runner"
	"mpipart/internal/runner/store"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to regenerate (2-11); 0 = per -all")
		table   = flag.Int("table", 0, "table number to regenerate (1)")
		all     = flag.Bool("all", false, "regenerate every figure and table")
		maxGrid = flag.Int("max-grid", 2048, "largest kernel grid size in sweeps")
		maxMult = flag.Int("max-mult", 32, "largest Jacobi problem multiplier")
		csv     = flag.Bool("csv", false, "emit CSV")
		workers = flag.Int("workers", 0, "parallel sweep workers; 0 = GOMAXPROCS")
		seq     = flag.Bool("seq", false, "sequential execution (same as -workers 1)")
		outdir  = flag.String("outdir", "", "also write one CSV per figure into this directory")

		storeDir    = flag.String("store", "", "persistent content-addressed result store root")
		requireWarm = flag.Bool("require-warm", false, "with -store: exit non-zero if any point was computed instead of replayed")
	)
	flag.Parse()
	if *requireWarm && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "figures: -require-warm needs -store")
		os.Exit(2)
	}

	if *fig == 0 && *table == 0 {
		*all = true
	}
	if *seq {
		*workers = 1
	}

	jobFor := func(n int) (bench.Job, bool) {
		switch n {
		case 2:
			// Fig. 2 has no data buffers, so the full paper range is cheap.
			mg := *maxGrid
			if mg < 131072 {
				mg = 131072
			}
			return bench.Fig2Job(mg), true
		case 3:
			return bench.Fig3Job(), true
		case 4:
			return bench.Fig4Job(*maxGrid), true
		case 5:
			return bench.Fig5Job(*maxGrid), true
		case 6:
			return bench.Fig6Job(*maxGrid), true
		case 7:
			return bench.Fig7Job(*maxGrid), true
		case 8:
			return bench.Fig8Job(*maxMult), true
		case 9:
			return bench.Fig9Job(*maxMult), true
		case 10:
			return bench.Fig10Job(*maxGrid), true
		case 11:
			return bench.Fig11Job(*maxGrid), true
		default:
			return bench.Job{}, false
		}
	}

	var jobs []bench.Job
	if *all {
		for n := 2; n <= 11; n++ {
			j, _ := jobFor(n)
			jobs = append(jobs, j)
		}
		jobs = append(jobs, bench.TableIJob())
	} else {
		if *fig != 0 {
			j, ok := jobFor(*fig)
			if !ok {
				fmt.Fprintf(os.Stderr, "figures: unknown figure %d\n", *fig)
				os.Exit(2)
			}
			jobs = append(jobs, j)
		}
		if *table == 1 {
			jobs = append(jobs, bench.TableIJob())
		} else if *table != 0 {
			fmt.Fprintf(os.Stderr, "figures: unknown table %d\n", *table)
			os.Exit(2)
		}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}

	r := runner.New(*workers)
	if *storeDir != "" {
		ds, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		r = runner.NewWithStore(*workers, ds)
	}
	tables := bench.RunJobs(r, jobs)
	for i, t := range tables {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, jobs[i].Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			t.CSV(f)
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *storeDir != "" {
		cs := r.CacheStats()
		fmt.Fprintf(os.Stderr, "figures: cache: %d computed, %d from store, %d memoized\n",
			cs.Computed, cs.StoreHits, cs.MemHits)
		if *requireWarm && cs.Computed > 0 {
			fmt.Fprintf(os.Stderr, "figures: -require-warm: %d points were recomputed; the store at %s is not fully warm\n",
				cs.Computed, *storeDir)
			os.Exit(1)
		}
	}
}
