// Command partbench is a focused micro-benchmark for partitioned
// point-to-point communication: it compares the traditional
// kernel+sync+Send model with the Progression Engine and Kernel Copy
// GPU-initiated mechanisms at a single configuration.
//
// Usage:
//
//	partbench -grid 1024 -parts 2 -inter
package main

import (
	"flag"
	"fmt"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
	"mpipart/internal/core"
)

func main() {
	var (
		grid  = flag.Int("grid", 1024, "kernel grid size (1024 threads/block, 8 B per thread)")
		parts = flag.Int("parts", 1, "transport partitions (blocks aggregate per partition)")
		inter = flag.Bool("inter", false, "inter-node (InfiniBand) instead of intra-node (NVLink)")
	)
	flag.Parse()

	cfg := bench.P2PConfig{Topo: cluster.OneNodeGH200(), Receiver: 1, Grid: *grid, Parts: *parts}
	if *inter {
		cfg.Topo = cluster.TwoNodeGH200()
		cfg.Receiver = 4
	}
	bytes := float64(*grid) * 1024 * 8

	tr := bench.MeasureTraditional(cfg)
	pe := bench.MeasurePartitioned(cfg, core.ProgressionEngine)
	fmt.Printf("message size        : %.1f KiB (%d grids x 1024 threads x 8 B)\n", bytes/1024, *grid)
	fmt.Printf("traditional         : %10.3f us   %8.3f GB/s\n", tr.Micros(), bytes/tr.Seconds()/1e9)
	fmt.Printf("progression engine  : %10.3f us   %8.3f GB/s   (%.2fx)\n",
		pe.Micros(), bytes/pe.Seconds()/1e9, float64(tr)/float64(pe))
	if !*inter {
		kc := bench.MeasurePartitioned(cfg, core.KernelCopy)
		fmt.Printf("kernel copy         : %10.3f us   %8.3f GB/s   (%.2fx)\n",
			kc.Micros(), bytes/kc.Seconds()/1e9, float64(tr)/float64(kc))
	} else {
		fmt.Println("kernel copy         : unavailable inter-node (no CUDA IPC mapping)")
	}
}
