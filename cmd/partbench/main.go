// Command partbench is a focused micro-benchmark for partitioned
// point-to-point communication: it compares the traditional
// kernel+sync+Send model with the Progression Engine and Kernel Copy
// GPU-initiated mechanisms at a single configuration. The independent
// worlds execute concurrently through the parallel sweep runner.
//
// Usage:
//
//	partbench -grid 1024 -parts 2 -inter [-workers N | -seq]
package main

import (
	"flag"
	"fmt"

	"mpipart/internal/bench"
	"mpipart/internal/cluster"
	"mpipart/internal/core"
	"mpipart/internal/runner"
)

func main() {
	var (
		grid    = flag.Int("grid", 1024, "kernel grid size (1024 threads/block, 8 B per thread)")
		parts   = flag.Int("parts", 1, "transport partitions (blocks aggregate per partition)")
		inter   = flag.Bool("inter", false, "inter-node (InfiniBand) instead of intra-node (NVLink)")
		workers = flag.Int("workers", 0, "parallel sweep workers; 0 = GOMAXPROCS")
		seq     = flag.Bool("seq", false, "sequential execution (same as -workers 1)")
	)
	flag.Parse()
	if *seq {
		*workers = 1
	}

	cfg := bench.P2PConfig{Topo: cluster.OneNodeGH200(), Receiver: 1, Grid: *grid, Parts: *parts}
	if *inter {
		cfg.Topo = cluster.TwoNodeGH200()
		cfg.Receiver = 4
	}
	bytes := float64(*grid) * 1024 * 8

	points := []runner.Point{
		bench.TraditionalPoint("partbench/traditional", cfg),
		bench.PartitionedPoint("partbench/prog_engine", cfg, core.ProgressionEngine),
	}
	if !*inter {
		points = append(points, bench.PartitionedPoint("partbench/kernel_copy", cfg, core.KernelCopy))
	}
	ms := runner.New(*workers).Run(points)

	tr, pe := ms[0]["elapsed_ns"], ms[1]["elapsed_ns"]
	fmt.Printf("message size        : %.1f KiB (%d grids x 1024 threads x 8 B)\n", bytes/1024, *grid)
	fmt.Printf("traditional         : %10.3f us   %8.3f GB/s\n", tr/1000, bytes/(tr/1e9)/1e9)
	fmt.Printf("progression engine  : %10.3f us   %8.3f GB/s   (%.2fx)\n",
		pe/1000, bytes/(pe/1e9)/1e9, tr/pe)
	if !*inter {
		kc := ms[2]["elapsed_ns"]
		fmt.Printf("kernel copy         : %10.3f us   %8.3f GB/s   (%.2fx)\n",
			kc/1000, bytes/(kc/1e9)/1e9, tr/kc)
	} else {
		fmt.Println("kernel copy         : unavailable inter-node (no CUDA IPC mapping)")
	}
}
