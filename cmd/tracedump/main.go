// Command tracedump runs a GPU-initiated partitioned scenario with tracing
// enabled and writes a Chrome trace-event JSON file (open in Perfetto or
// chrome://tracing) showing kernels, stream synchronizations, host
// PbufPrepare spans, and UCX put activity on their virtual-time axes.
//
// Usage:
//
//	tracedump -o trace.json -grid 16 -scenario p2p|allreduce
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpipart/internal/cluster"
	"mpipart/internal/coll"
	"mpipart/internal/core"
	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

func main() {
	var (
		out      = flag.String("o", "trace.json", "output file")
		grid     = flag.Int("grid", 16, "kernel grid size")
		scenario = flag.String("scenario", "p2p", "p2p | allreduce")
	)
	flag.Parse()

	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	tr := sim.NewTracer()
	w.K.SetTracer(tr)

	switch *scenario {
	case "p2p":
		runP2P(w, *grid)
	case "allreduce":
		runAllreduce(w, *grid)
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
	if err := w.Run(); err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d trace events to %s (open in Perfetto / chrome://tracing)\n",
		tr.Len(), *out)
}

func runP2P(w *mpi.World, grid int) {
	n := grid * 1024
	buf := make([]float64, n)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := core.PsendInit(p, r, 1, 1, buf, 1)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := core.PrequestCreate(p, sreq, core.PrequestOpts{
				Mech: core.ProgressionEngine, BlocksPerTransport: grid,
			})
			if err != nil {
				log.Fatal(err)
			}
			r.Stream.Launch(gpu.KernelSpec{
				Name: "vecadd+pready", Grid: grid, Block: 1024,
				Body: func(b *gpu.BlockCtx) { preq.PreadyBlockAggregated(b, 0) },
			})
			sreq.Wait(p)
		case 1:
			rreq := core.PrecvInit(p, r, 0, 1, make([]float64, n), 1)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
}

func runAllreduce(w *mpi.World, grid int) {
	n := grid * 1024
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		buf := r.Dev.Alloc(n)
		req := coll.PallreduceInit(p, r, buf, 2, mpi.OpSum)
		req.Start(p)
		req.PbufPrepare(p)
		dev := req.DeviceHandle(p, grid/2)
		r.Stream.Launch(gpu.KernelSpec{
			Name: "grad+pready", Grid: grid, Block: 1024,
			Body: func(b *gpu.BlockCtx) {
				dev.PreadyBlockAggregated(b, b.Idx/(grid/2))
			},
		})
		req.Wait(p)
	})
}
