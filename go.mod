module mpipart

go 1.22
