// Collectives example: the generic partitioned-collective schedule at
// work. The paper generalizes MPIX_P<collective>_init because the MPI Forum
// proposals contain at least 21 collectives; this example runs five of them
// — allreduce, bcast, reduce, allgather, scan — through the *same*
// Algorithm-2 progression machinery, on four simulated GH200s.
//
// Run with: go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"mpipart/internal/cluster"
	"mpipart/internal/coll"
	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

const n = 32

func run(name string, fn func(r *mpi.Rank, p *sim.Proc) []float64, check func(rank int, buf []float64) error) {
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	results := make([][]float64, w.Size())
	var elapsed sim.Duration
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		r.Barrier(p)
		t0 := p.Now()
		results[r.ID] = fn(r, p)
		r.Barrier(p)
		if r.ID == 0 {
			elapsed = sim.Duration(p.Now() - t0)
		}
	})
	if err := w.Run(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	for rk, buf := range results {
		if err := check(rk, buf); err != nil {
			log.Fatalf("%s rank %d: %v", name, rk, err)
		}
	}
	fmt.Printf("%-14s %10.2f us   verified on all ranks\n", name, elapsed.Micros())
}

// collective runs one request through its full epoch with every user
// partition marked ready by the host.
func collective(r *mpi.Rank, p *sim.Proc, req *coll.Request, contribute bool) {
	req.Start(p)
	req.PbufPrepare(p)
	if contribute {
		for u := 0; u < req.UserPartitions(); u++ {
			req.Pready(p, u)
		}
	}
	req.Wait(p)
}

func main() {
	P := 4
	fmt.Printf("five partitioned collectives over one generic schedule engine (%d GPUs)\n\n", P)

	run("allreduce", func(r *mpi.Rank, p *sim.Proc) []float64 {
		buf := r.Dev.Alloc(n)
		for i := range buf {
			buf[i] = float64(r.ID + 1)
		}
		collective(r, p, coll.PallreduceInit(p, r, buf, 2, mpi.OpSum), true)
		return buf
	}, func(rank int, buf []float64) error {
		if buf[0] != 10 { // 1+2+3+4
			return fmt.Errorf("got %v, want 10", buf[0])
		}
		return nil
	})

	run("bcast(root=1)", func(r *mpi.Rank, p *sim.Proc) []float64 {
		buf := r.Dev.Alloc(n)
		if r.ID == 1 {
			for i := range buf {
				buf[i] = 42
			}
		}
		req := coll.PbcastInit(p, r, buf, 2, 1)
		collective(r, p, req, r.ID == 1)
		return buf
	}, func(rank int, buf []float64) error {
		if buf[n-1] != 42 {
			return fmt.Errorf("got %v, want 42", buf[n-1])
		}
		return nil
	})

	run("reduce(root=0)", func(r *mpi.Rank, p *sim.Proc) []float64 {
		buf := r.Dev.Alloc(n)
		for i := range buf {
			buf[i] = float64(r.ID * 10)
		}
		collective(r, p, coll.PreduceInit(p, r, buf, 1, mpi.OpMax, 0), true)
		return buf
	}, func(rank int, buf []float64) error {
		if rank == 0 && buf[0] != 30 {
			return fmt.Errorf("root got %v, want 30", buf[0])
		}
		return nil
	})

	run("allgather", func(r *mpi.Rank, p *sim.Proc) []float64 {
		buf := r.Dev.Alloc(n) // 4 chunks of 8
		chunk := n / P
		for j := 0; j < chunk; j++ {
			buf[r.ID*chunk+j] = float64(100 + r.ID)
		}
		collective(r, p, coll.PallgatherInit(p, r, buf, 1), true)
		return buf
	}, func(rank int, buf []float64) error {
		chunk := n / P
		for c := 0; c < P; c++ {
			if buf[c*chunk] != float64(100+c) {
				return fmt.Errorf("chunk %d = %v", c, buf[c*chunk])
			}
		}
		return nil
	})

	run("scan", func(r *mpi.Rank, p *sim.Proc) []float64 {
		buf := r.Dev.Alloc(n)
		for i := range buf {
			buf[i] = 1
		}
		collective(r, p, coll.PscanInit(p, r, buf, 1, mpi.OpSum), true)
		return buf
	}, func(rank int, buf []float64) error {
		if buf[0] != float64(rank+1) { // inclusive prefix of ones
			return fmt.Errorf("got %v, want %d", buf[0], rank+1)
		}
		return nil
	})

	fmt.Println("\nall five built from coll.Schedule — no per-collective engine code")
}
