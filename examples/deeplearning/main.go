// Deep-learning example: data-parallel training with gradient allreduce
// (Section VI-D2). Four simulated GH200s each train a Binary Cross-Entropy
// model on their own data shard; every step the gradients are synchronized
// with one of three allreduce implementations:
//
//   - traditional MPI_Allreduce (host-staged — the slow baseline),
//   - the paper's partitioned allreduce (GPU-initiated, ring schedule),
//   - an NCCL-style fused ring (the vendor-library reference).
//
// All three produce identical models; the step times differ enormously.
//
// Run with: go run ./examples/deeplearning
package main

import (
	"fmt"
	"log"
	"math"

	"mpipart/internal/cluster"
	"mpipart/internal/dl"
	"mpipart/internal/mpi"
	"mpipart/internal/nccl"
)

func main() {
	topo := cluster.OneNodeGH200()
	cfg := dl.Config{Params: 256 * 1024, Steps: 4, UserParts: 4}

	type variant struct {
		name string
		run  func(r *mpi.Rank, comm *nccl.Comm) dl.Stats
	}
	variants := []variant{
		{"MPI_Allreduce", func(r *mpi.Rank, _ *nccl.Comm) dl.Stats { return dl.MPIAllreduce(r, cfg) }},
		{"partitioned", func(r *mpi.Rank, _ *nccl.Comm) dl.Stats { return dl.PartitionedAllreduce(r, cfg) }},
		{"NCCL", func(r *mpi.Rank, c *nccl.Comm) dl.Stats { return dl.NCCLAllreduce(r, c, cfg) }},
	}

	fmt.Printf("BCE training: %.1f MiB gradients, %d GPUs, %d steps\n",
		float64(cfg.Params)*8/(1<<20), topo.TotalGPUs(), cfg.Steps)

	var sums []float64
	for _, v := range variants {
		w := mpi.NewWorld(topo, cluster.DefaultModel(), 1)
		comm := nccl.NewComm(w)
		var st dl.Stats
		w.Spawn(func(r *mpi.Rank) {
			s := v.run(r, comm)
			if r.ID == 0 {
				st = s
			}
		})
		if err := w.Run(); err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		fmt.Printf("%-14s %12.3f us/step   final weight sum %.9f\n",
			v.name, st.StepTime.Micros(), st.WeightSum)
		sums = append(sums, st.WeightSum)
	}

	for i := 1; i < len(sums); i++ {
		if math.Abs(sums[i]-sums[0]) > 1e-6*(1+math.Abs(sums[0])) {
			log.Fatalf("models diverge: %v", sums)
		}
	}
	ref := dl.Reference(cfg, topo.TotalGPUs())
	refSum := 0.0
	for _, v := range ref {
		refSum += v
	}
	fmt.Printf("sequential reference weight sum: %.9f — all variants agree\n", refSum)
}
