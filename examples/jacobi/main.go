// Jacobi example: the paper's first application kernel (Section VI-D1).
// A 2-D Poisson problem is decomposed 4x2 across eight GH200s on two
// simulated nodes; every iteration runs a 5-point stencil and exchanges
// halos. The traditional variant synchronizes the stream before MPI; the
// partitioned variant marks halo partitions ready from inside the stencil
// kernel, overlapping boundary communication with interior computation.
//
// Run with: go run ./examples/jacobi
package main

import (
	"fmt"
	"log"

	"mpipart/internal/cluster"
	"mpipart/internal/jacobi"
	"mpipart/internal/mpi"
)

func main() {
	topo := cluster.TwoNodeGH200()
	px, py := jacobi.Decompose(topo.TotalGPUs())
	cfg := jacobi.Config{PX: px, PY: py, NX: 128, NY: 128, Iters: 10}

	runVariant := func(name string, fn func(*mpi.Rank, jacobi.Config) jacobi.Stats) jacobi.Stats {
		w := mpi.NewWorld(topo, cluster.DefaultModel(), 1)
		var st jacobi.Stats
		w.Spawn(func(r *mpi.Rank) {
			s := fn(r, cfg)
			if r.ID == 0 {
				st = s
			}
		})
		if err := w.Run(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-12s %8.2f GFLOP/s  (%.3f ms for %d sweeps)\n",
			name, st.GFLOPs, st.Elapsed.Seconds()*1e3, cfg.Iters)
		return st
	}

	fmt.Printf("Jacobi %dx%d tiles of %dx%d on %d GPUs (%d nodes)\n",
		px, py, cfg.NX, cfg.NY, topo.TotalGPUs(), topo.Nodes)
	tr := runVariant("traditional", jacobi.Traditional)
	pa := runVariant("partitioned", jacobi.Partitioned)
	fmt.Printf("speedup      %8.3fx\n", pa.GFLOPs/tr.GFLOPs)

	if tr.Checksum != pa.Checksum {
		log.Fatalf("variants disagree: %v vs %v", tr.Checksum, pa.Checksum)
	}
	fmt.Printf("verified: identical solutions (rank-0 tile checksum %.6f)\n", tr.Checksum)
}
