// Quickstart: the full GPU-initiated MPI Partitioned control flow of the
// paper's Figure 1, on a simulated one-node GH200 pair.
//
// Rank 0 computes a vector sum on its GPU and marks each block's partition
// ready from *inside the kernel* (device MPIX_Pready, progression-engine
// mechanism); rank 1 receives the partitions as they arrive. No
// cudaStreamSynchronize separates computation from communication.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpipart/internal/cluster"
	"mpipart/internal/core"
	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
)

const (
	grid      = 8   // kernel blocks = transport partitions
	blockSize = 256 // threads per block
	tag       = 1
)

func main() {
	n := grid * blockSize
	world := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)

	a, b := make([]float64, n), make([]float64, n)
	for i := range a {
		a[i], b[i] = float64(i), 2*float64(i)
	}
	src := make([]float64, n) // rank 0's send buffer (device memory)
	dst := make([]float64, n) // rank 1's receive buffer

	world.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			// ① Initialize the persistent partitioned channel.
			sreq := core.PsendInit(p, r, 1, tag, src, grid)
			// Begin the communication epoch; guarantee the receiver is
			// ready (② in Fig. 1).
			sreq.Start(p)
			sreq.PbufPrepare(p)
			// ③ Move the device request (flags, counters) to the GPU.
			preq, err := core.PrequestCreate(p, sreq, core.PrequestOpts{
				Mech: core.ProgressionEngine,
			})
			if err != nil {
				log.Fatal(err)
			}
			// ④ The kernel computes and signals readiness per block.
			r.Stream.Launch(gpu.KernelSpec{
				Name: "vecadd+pready", Grid: grid, Block: blockSize,
				Body: func(bc *gpu.BlockCtx) {
					bc.ForEachThread(func(i int) { src[i] = a[i] + b[i] })
					preq.PreadyBlock(bc, bc.Idx)
				},
			})
			// ⑤ Complete the epoch (flush all puts). No stream sync!
			sreq.Wait(p)
			fmt.Printf("[rank 0] sent %d partitions, done at t=%v\n", grid, p.Now())
		case 1:
			rreq := core.PrecvInit(p, r, 0, tag, dst, grid)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			// Watch partitions arrive one by one (MPI_Parrived).
			seen := 0
			for seen < grid {
				if rreq.Parrived(seen) {
					fmt.Printf("[rank 1] partition %d arrived at t=%v\n", seen, p.Now())
					seen++
					continue
				}
				rreq.ArrivalFlags().Cond().Wait(p)
			}
			rreq.Wait(p)
		}
	})
	if err := world.Run(); err != nil {
		log.Fatal(err)
	}

	for i := range dst {
		if dst[i] != 3*float64(i) {
			log.Fatalf("dst[%d] = %v, want %v", i, dst[i], 3*float64(i))
		}
	}
	fmt.Printf("OK: %d elements transferred GPU-initiated, verified\n", n)
}
