// Aggregation example: the paper's central design question (Section VI-A1,
// Fig. 3) — should a GPU mark data ready per thread, per warp, or per
// block? This example runs the same 1024-thread transfer with each
// MPIX_Pready binding and with the Kernel Copy mechanism, printing the
// signalling cost and end-to-end epoch time of each.
//
// Run with: go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"mpipart/internal/cluster"
	"mpipart/internal/core"
	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

const threads = 1024

func measure(level string) (signal, epoch sim.Duration) {
	nparts := 1
	switch level {
	case "thread":
		nparts = threads
	case "warp":
		nparts = threads / 32
	}
	mech := core.ProgressionEngine
	if level == "kernel-copy" {
		mech = core.KernelCopy
	}
	w := mpi.NewWorld(cluster.OneNodeGH200(), cluster.DefaultModel(), 1)
	buf := make([]float64, threads)
	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := core.PsendInit(p, r, 1, 9, buf, nparts)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := core.PrequestCreate(p, sreq, core.PrequestOpts{Mech: mech})
			if err != nil {
				log.Fatal(err)
			}
			t0 := p.Now()
			r.Stream.Launch(gpu.KernelSpec{
				Name: "pready-" + level, Grid: 1, Block: threads,
				Body: func(b *gpu.BlockCtx) {
					switch level {
					case "thread":
						preq.PreadyThread(b, func(gtid int) int { return gtid })
					case "warp":
						preq.PreadyWarp(b, func(wp int) int { return wp })
					case "block":
						preq.PreadyBlock(b, 0)
					case "kernel-copy":
						preq.KernelCopyWholePartition(b, 0)
					}
				},
			})
			// Signalling cost: until every notification is host-visible.
			preq.Pending().Cond().WaitFor(p, func() bool {
				return preq.Pending().CountNonZero() >= nparts
			})
			signal = sim.Duration(p.Now() - t0)
			sreq.Wait(p)
			epoch = sim.Duration(p.Now() - t0)
		case 1:
			rreq := core.PrecvInit(p, r, 0, 9, buf, nparts)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			rreq.Wait(p)
		}
	})
	if err := w.Run(); err != nil {
		log.Fatal(err)
	}
	return signal, epoch
}

func main() {
	fmt.Printf("MPIX_Pready aggregation, one 1024-thread block, 8 KiB message, intra-node\n\n")
	fmt.Printf("%-12s  %10s  %14s  %10s\n", "binding", "partitions", "signal-visible", "epoch")
	var blockEpoch sim.Duration
	for _, level := range []string{"thread", "warp", "block", "kernel-copy"} {
		sig, ep := measure(level)
		parts := map[string]int{"thread": threads, "warp": threads / 32, "block": 1, "kernel-copy": 1}[level]
		fmt.Printf("%-12s  %10d  %12.2fus  %8.2fus\n", level, parts, sig.Micros(), ep.Micros())
		if level == "block" {
			blockEpoch = ep
		}
		if level == "thread" {
			fmt.Printf("%-12s  %10s  (every thread stores to host memory — the MPI-ACX baseline)\n", "", "")
		}
	}
	fmt.Printf("\nthe paper's conclusion: expose thread-level MPIX_Pready to keep the\n")
	fmt.Printf("programming model simple, but aggregate to block level inside MPI\n")
	fmt.Printf("(block-level epoch here: %.2fus)\n", blockEpoch.Micros())
}
