// Early-bird example: the core promise of partitioned communication — the
// receiver can start computing on partitions *as they arrive* instead of
// waiting for the whole message (the "early-bird transmission" the paper's
// modelling lineage quantifies).
//
// Rank 0's kernel produces and sends 16 partitions GPU-initiated; rank 1
// launches a consumer kernel for each partition the moment MPI_Parrived
// reports it. The run prints when each partition arrived and when its
// consumer finished, and compares end-to-end time with the wait-for-all
// approach.
//
// Run with: go run ./examples/earlybird
package main

import (
	"fmt"
	"log"

	"mpipart/internal/cluster"
	"mpipart/internal/core"
	"mpipart/internal/gpu"
	"mpipart/internal/mpi"
	"mpipart/internal/sim"
)

const (
	nparts       = 16
	blocksPerPct = 64 // blocks aggregated into one partition (512 KiB each)
	blockSize    = 1024
	grid         = nparts * blocksPerPct
	n            = grid * blockSize
)

// run executes one producer/consumer exchange; earlyBird selects whether
// the receiver consumes per-partition or after MPI_Wait.
func run(earlyBird bool, verbose bool) sim.Duration {
	// Two nodes: InfiniBand arrivals are slow enough that consuming early
	// genuinely overlaps communication with computation.
	w := mpi.NewWorld(cluster.TwoNodeGH200(), cluster.DefaultModel(), 1)
	src := make([]float64, n)
	dst := make([]float64, n)
	sums := make([]float64, nparts)
	var elapsed sim.Duration

	partElems := n / nparts
	consumerSpec := func(part int) gpu.KernelSpec {
		return gpu.KernelSpec{
			Name: fmt.Sprintf("consume-%d", part), Grid: blocksPerPct, Block: blockSize,
			WaveTime: sim.Microseconds(3),
			Body: func(b *gpu.BlockCtx) {
				if b.Idx != 0 {
					return // one block tallies; the rest are modeled work
				}
				s := 0.0
				for i := part * partElems; i < (part+1)*partElems; i++ {
					s += dst[i]
				}
				sums[part] = s
			},
		}
	}

	w.Spawn(func(r *mpi.Rank) {
		p := r.Proc()
		switch r.ID {
		case 0:
			sreq := core.PsendInit(p, r, 4, 1, src, nparts)
			sreq.Start(p)
			sreq.PbufPrepare(p)
			preq, err := core.PrequestCreate(p, sreq, core.PrequestOpts{
				Mech: core.ProgressionEngine, BlocksPerTransport: blocksPerPct,
			})
			if err != nil {
				log.Fatal(err)
			}
			r.Barrier(p)
			r.Stream.Launch(gpu.KernelSpec{
				Name: "produce", Grid: grid, Block: blockSize,
				Body: func(b *gpu.BlockCtx) {
					b.ForEachThread(func(i int) { src[i] = float64(i % 7) })
					preq.PreadyBlockAggregated(b, b.Idx/blocksPerPct)
				},
			})
			sreq.Wait(p)
		case 4:
			rreq := core.PrecvInit(p, r, 0, 1, dst, nparts)
			rreq.Start(p)
			rreq.PbufPrepare(p)
			r.Barrier(p)
			t0 := p.Now()
			if earlyBird {
				consumed := 0
				gates := make([]*sim.Gate, 0, nparts)
				for consumed < nparts {
					launched := false
					for part := 0; part < nparts; part++ {
						if part < consumed {
							continue
						}
						if rreq.Parrived(consumed) {
							if verbose {
								fmt.Printf("  partition %2d arrived at %8.2fus — consumer launched\n",
									consumed, sim.Duration(p.Now()-t0).Micros())
							}
							g := r.Stream.Launch(consumerSpec(consumed))
							gates = append(gates, g)
							consumed++
							launched = true
						}
						break
					}
					if !launched {
						rreq.ArrivalFlags().Cond().Wait(p)
					}
				}
				for _, g := range gates {
					g.Wait(p)
				}
				if verbose {
					fmt.Printf("  consumers done at %8.2fus\n", sim.Duration(p.Now()-t0).Micros())
				}
				rreq.Wait(p)
				if verbose {
					fmt.Printf("  rreq.Wait done at %8.2fus\n", sim.Duration(p.Now()-t0).Micros())
				}
			} else {
				rreq.Wait(p) // all partitions first
				var g *sim.Gate
				for part := 0; part < nparts; part++ {
					g = r.Stream.Launch(consumerSpec(part))
				}
				g.Wait(p)
			}
			elapsed = sim.Duration(p.Now() - t0)
		default:
			r.Barrier(p)
		}
	})
	if err := w.Run(); err != nil {
		log.Fatal(err)
	}
	for part := 0; part < nparts; part++ {
		want := 0.0
		for i := part * partElems; i < (part+1)*partElems; i++ {
			want += float64(i % 7)
		}
		if sums[part] != want {
			log.Fatalf("partition %d consumed %v, want %v", part, sums[part], want)
		}
	}
	return elapsed
}

func main() {
	fmt.Printf("early-bird consumption of %d partitions (receiver side)\n\n", nparts)
	early := run(true, true)
	waitAll := run(false, false)
	fmt.Printf("\nearly-bird (consume as partitions arrive): %8.2f us\n", early.Micros())
	fmt.Printf("wait-for-all (MPI_Wait, then consume):     %8.2f us\n", waitAll.Micros())
	fmt.Printf("overlap win: %.2fx — the partitioned model's raison d'être\n",
		float64(waitAll)/float64(early))
}
